"""R-T2 — Cluster resource utilization per policy.

The over-provisioning scenario: the same three services sized by their
users for peak load (the Kubernetes norm), plus background batch churn.
Reports mean allocated and used fractions of the cluster, per resource.
Shape expected: the adaptive controller's continuous reclaim roughly
doubles effective utilization (usage/alloc) versus the static baseline.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import RESOURCES, ResourceVector
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace
from benchmarks.scenarios import HOUR, build_platform, deploy_batch_churn

POLICIES = ("static", "vpa", "adaptive")
DURATION = 4 * HOUR


def deploy_overprovisioned_mix(platform):
    """Six services sized ~4× their mean demand (peak + safety margin)."""
    for i in range(6):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=DiurnalTrace(base=80, amplitude=50, period=2 * HOUR,
                               phase=i * 1200.0),
            demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.2, net_mb=0.1,
                                   base_latency=0.01),
            allocation=ResourceVector(cpu=3, memory=6, disk_bw=120, net_bw=80),
            plo=LatencyPLO(0.06, window=30),
        )
    return [f"svc-{i}" for i in range(6)]


def run_policy(policy: str):
    platform = build_platform(policy, nodes=6, seed=17)
    deploy_overprovisioned_mix(platform)
    deploy_batch_churn(platform, start=0.5 * HOUR)
    platform.run(DURATION)
    return platform.result()


@pytest.mark.benchmark(group="t2-utilization", min_rounds=1, max_time=1)
def test_t2_utilization(benchmark, report):
    results = {}

    def experiment():
        for policy in POLICIES:
            if policy not in results:
                results[policy] = run_policy(policy)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for policy in POLICIES:
        util = results[policy].utilization
        efficiency = util.overall_usage / max(util.overall_alloc, 1e-9)
        rows.append([
            policy,
            *(f"{util.mean_alloc[r]:.1%}" for r in RESOURCES),
            f"{util.overall_alloc:.1%}",
            f"{efficiency:.0%}",
            f"{results[policy].total_violation_fraction():.1%}",
        ])
    report(
        "",
        f"R-T2: mean allocated cluster fraction per policy ({DURATION / HOUR:.0f} h, "
        "6 over-provisioned services + batch churn)",
        format_table(
            ["policy", *(f"alloc {r}" for r in RESOURCES), "overall",
             "usage/alloc", "violations"],
            rows,
        ),
    )

    static_util = results["static"].utilization
    adaptive_util = results["adaptive"].utilization
    static_eff = static_util.overall_usage / max(static_util.overall_alloc, 1e-9)
    adaptive_eff = adaptive_util.overall_usage / max(adaptive_util.overall_alloc, 1e-9)
    report(f"effective utilization: static {static_eff:.0%} → adaptive "
           f"{adaptive_eff:.0%} ({adaptive_eff / max(static_eff, 1e-9):.1f}x)")
    benchmark.extra_info["utilization_gain"] = adaptive_eff / max(static_eff, 1e-9)

    # Shape: reclaim at least doubles usage/alloc efficiency, and violations
    # do not explode while doing it.
    assert adaptive_eff > 2 * static_eff
    assert results["adaptive"].total_violation_fraction() < 0.15
