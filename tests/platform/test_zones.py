"""Tests for zone topology and zone-aware gang placement."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig, build_nodes
from repro.platform.evolve import EvolvePlatform
from repro.workloads.hpc import HPCJob


ALLOC = ResourceVector(cpu=6, memory=8, disk_bw=5, net_bw=100)


class TestZoneLabels:
    def test_flat_cluster_has_no_zone_labels(self):
        nodes = build_nodes(ClusterSpec(node_count=3))
        assert all("zone" not in n.labels for n in nodes)

    def test_round_robin_zones(self):
        nodes = build_nodes(ClusterSpec(node_count=4, zones=2))
        assert [n.labels["zone"] for n in nodes] == ["z0", "z1", "z0", "z1"]

    def test_zones_with_groups(self):
        spec = ClusterSpec(
            groups=(NodeGroup("w", 2, ResourceVector(cpu=8)),
                    NodeGroup("f", 2, ResourceVector(cpu=8),
                              labels={"accelerator": "fpga"})),
            zones=2,
        )
        nodes = build_nodes(spec)
        assert [n.labels["zone"] for n in nodes] == ["z0", "z1", "z0", "z1"]
        assert nodes[2].labels["accelerator"] == "fpga"

    def test_invalid_zone_count(self):
        with pytest.raises(ValueError):
            ClusterSpec(zones=0)


class TestZonePenalty:
    def _rank_speed(self, engine, api, stretch):
        job = HPCJob(
            "j", engine, api, ranks=2, duration=100.0, allocation=ALLOC,
            comm_fraction=0.4, zone_penalty=0.5,
        )
        return job._rank_speed(ALLOC, comm_stretch=stretch)

    def test_stretch_slows_comm_phase(self, engine, api):
        full = self._rank_speed(engine, api, 1.0)
        spanned = self._rank_speed(engine, api, 1.5)
        assert full == pytest.approx(1.0)
        # iteration time 0.6 + 0.4×1.5 = 1.2 ⇒ rate 1/1.2.
        assert spanned == pytest.approx(1 / 1.2)

    def test_negative_penalty_rejected(self, engine, api):
        with pytest.raises(ValueError):
            HPCJob("j", engine, api, ranks=1, duration=10, allocation=ALLOC,
                   zone_penalty=-0.1)


def run_gang(*, zone_aware: bool, seed: int = 5):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4, zones=2),
        config=PlatformConfig(seed=seed),
        scheduler="converged",
        scheduler_kwargs={"zone_aware_gangs": zone_aware,
                          "interference_weight": 0.0},
    )
    job = platform.submit_hpc(
        "mpi", ranks=2, duration=600.0,
        allocation=ResourceVector(cpu=7, memory=8, disk_bw=5, net_bw=100),
        comm_fraction=0.4, zone_penalty=1.0,
    )
    platform.run(3 * 3600.0)
    return job, platform


class TestZoneAwarePlacement:
    def test_gang_packed_into_one_zone(self):
        job, platform = run_gang(zone_aware=True)
        assert job.done
        assert platform.scheduler.single_zone_gangs == 1
        # Full speed: makespan ≈ nominal + startup.
        assert job.makespan() == pytest.approx(610, abs=20)

    def test_blind_placement_spans_and_slows(self):
        """With zone awareness off, LeastAllocated spreads the two ranks
        across zones and the comm penalty stretches the job by ~40%."""
        job, platform = run_gang(zone_aware=False)
        assert job.done
        assert platform.scheduler.single_zone_gangs == 0
        aware_job, _p = run_gang(zone_aware=True)
        assert job.makespan() > aware_job.makespan() * 1.2

    def test_oversized_gang_still_spans(self):
        """A gang too big for any single zone falls back to spanning."""
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=4, zones=2),
            config=PlatformConfig(seed=5),
            scheduler="converged",
        )
        job = platform.submit_hpc(
            "big", ranks=4, duration=60.0,
            allocation=ResourceVector(cpu=10, memory=8, disk_bw=5, net_bw=100),
            zone_penalty=0.5,
        )
        platform.run(600.0)
        assert job.done  # spanning allowed, just slower
