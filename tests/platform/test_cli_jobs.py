"""CLI summarize coverage for jobs, chaos, and quota runs."""

import json

from repro.cli import main


def _write(tmp_path, config):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(config))
    return str(path)


def test_run_with_jobs_reports_makespans(tmp_path, capsys):
    config = {
        "seed": 2,
        "duration": 900,
        "cluster": {"nodes": 3},
        "bigdata": [{
            "name": "etl",
            "stages": [{"name": "map", "work": 100}],
            "allocation": {"cpu": 2, "memory": 4, "disk_bw": 20, "net_bw": 20},
        }],
        "hpc": [{
            "name": "sim", "ranks": 2, "job_duration": 120,
            "allocation": {"cpu": 4, "memory": 4, "disk_bw": 5, "net_bw": 50},
        }],
    }
    assert main(["run", _write(tmp_path, config)]) == 0
    out = capsys.readouterr().out
    assert "BigDataJob" in out
    assert "HPCJob" in out
    assert " s " in out  # makespans rendered


def test_run_with_unfinished_job_reports_running(tmp_path, capsys):
    config = {
        "duration": 60,
        "cluster": {"nodes": 2},
        "bigdata": [{
            "name": "long",
            "stages": [{"name": "map", "work": 1_000_000}],
            "allocation": {"cpu": 2, "memory": 4, "disk_bw": 20, "net_bw": 20},
        }],
    }
    assert main(["run", _write(tmp_path, config)]) == 0
    assert "running" in capsys.readouterr().out


def test_run_with_chaos_reports_failures(tmp_path, capsys):
    config = {
        "seed": 1,
        "duration": 3600,
        "cluster": {"nodes": 3},
        "chaos": {"mtbf": 300, "repair_time": 60},
    }
    assert main(["run", _write(tmp_path, config)]) == 0
    assert "node failures injected" in capsys.readouterr().out


def test_run_with_zoned_hetero_cluster(tmp_path, capsys):
    config = {
        "duration": 120,
        "cluster": {
            "zones": 2,
            "groups": [
                {"name": "w", "count": 2,
                 "capacity": {"cpu": 8, "memory": 32, "disk_bw": 100,
                              "net_bw": 100}},
            ],
        },
    }
    assert main(["run", _write(tmp_path, config)]) == 0
    assert "2 nodes" in capsys.readouterr().out
