"""Unit tests for platform configuration."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig, build_nodes


def test_default_cluster_spec():
    spec = ClusterSpec()
    nodes = build_nodes(spec)
    assert len(nodes) == 8
    assert all(n.capacity == spec.node_capacity for n in nodes)
    assert nodes[0].name == "node-00"


def test_node_count_validation():
    with pytest.raises(ValueError):
        ClusterSpec(node_count=0)


def test_system_reserved_reduces_allocatable():
    spec = ClusterSpec()
    node = build_nodes(spec)[0]
    assert node.allocatable.cpu == spec.node_capacity.cpu - spec.system_reserved.cpu


def test_custom_name_prefix():
    nodes = build_nodes(ClusterSpec(node_count=2), name_prefix="worker")
    assert [n.name for n in nodes] == ["worker-00", "worker-01"]


def test_platform_config_defaults_valid():
    config = PlatformConfig()
    assert config.min_allocation.fits_within(config.max_allocation)


def test_platform_config_validation():
    with pytest.raises(ValueError):
        PlatformConfig(scrape_interval=0)
    with pytest.raises(ValueError):
        PlatformConfig(
            min_allocation=ResourceVector(cpu=100),
            max_allocation=ResourceVector(cpu=1),
        )
