"""Scenario-pack tests: every entry loads, validates, and replays."""

import json

import pytest

from repro.scenarios import (
    PACK_VERSION,
    UnknownScenarioError,
    load_pack,
    load_scenario,
    scenario_names,
)
from repro.verify.fuzzer import (
    FORMAT_VERSION,
    MIN_HORIZON,
    WORKLOAD_KINDS,
    build_platform,
    run_episode,
)

KNOWN_DOMAINS = (
    "crash",
    "degrade",
    "controller-crash",
    "partition",
    "zone-outage",
    "overload-surge",
    "executor-kill",
    "straggler",
    "data-loss",
)

EXPECTED = (
    "calm",
    "data-fault",
    "diurnal",
    "flash-crowd",
    "overload-surge",
    "zone-outage",
)


def test_pack_contains_the_curated_scenarios():
    assert scenario_names() == EXPECTED
    assert len(scenario_names()) >= 6


def test_unknown_scenario_lists_pack():
    with pytest.raises(UnknownScenarioError) as info:
        load_scenario("mystery")
    for name in EXPECTED:
        assert repr(name) in str(info.value)


@pytest.mark.parametrize("name", EXPECTED)
def test_entry_is_a_valid_replayable_spec(name):
    entry = load_scenario(name)
    assert entry.name == name
    assert entry.description
    spec = entry.spec
    assert spec.horizon >= MIN_HORIZON
    assert spec.nodes >= 3
    assert spec.controller_replicas == 1  # policy-portable across the arena
    for workload in spec.workloads:
        assert workload.kind in WORKLOAD_KINDS
    for event in spec.chaos:
        assert event.domain in KNOWN_DOMAINS
        assert 0 <= event.at < spec.horizon
    # Round-trips through the repro-file format unchanged.
    assert type(spec).from_json(spec.to_json()) == spec
    # Pack metadata is carried alongside, versioned.
    data = json.loads(entry.path.read_text())
    assert data["pack_version"] == PACK_VERSION
    assert data["format"] == FORMAT_VERSION


@pytest.mark.parametrize("name", EXPECTED)
def test_entry_builds_a_platform(name):
    spec = load_scenario(name).spec
    platform = build_platform(spec)
    assert len(platform.apps) == len(spec.workloads)


def test_calm_replays_clean_under_invariants():
    spec = load_scenario("calm").spec
    result = run_episode(spec, every=5)
    assert result.ok, result.violations
    assert result.events_executed > 0
