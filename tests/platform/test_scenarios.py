"""Scenario-pack tests: every entry loads, validates, and replays.

The pack contract is append-only: entries introduced at an earlier
``pack_version`` must never change (their canonical spec hashes are
pinned below), new versions may only add entries. Pack v2 appended the
trace-realism trio (``diurnal-replay``, ``heavy-tail``,
``correlated-surge``) in the fuzzer's ScenarioSpec v4 format.
"""

import hashlib
import json

import pytest

from repro.arena import run_cell
from repro.scenarios import (
    PACK_VERSION,
    UnknownScenarioError,
    load_scenario,
    scenario_names,
)
from repro.verify.fuzzer import (
    MIN_HORIZON,
    SUPPORTED_FORMATS,
    WORKLOAD_KINDS,
    build_platform,
    run_episode,
)

KNOWN_DOMAINS = (
    "crash",
    "degrade",
    "controller-crash",
    "partition",
    "zone-outage",
    "overload-surge",
    "executor-kill",
    "straggler",
    "data-loss",
)

V1_ENTRIES = (
    "calm",
    "data-fault",
    "diurnal",
    "flash-crowd",
    "overload-surge",
    "zone-outage",
)
V2_ENTRIES = (
    "correlated-surge",
    "diurnal-replay",
    "heavy-tail",
)
EXPECTED = tuple(sorted(V1_ENTRIES + V2_ENTRIES))

#: Append-only enforcement: sha256 (truncated) of each v1 entry's
#: canonical spec dict. Editing a v1 entry silently reshuffles every
#: policy's historical scorecard, so it must fail loudly here instead.
V1_SPEC_HASHES = {
    "calm": "2247ddf36e196de2",
    "data-fault": "284b634be132b82a",
    "diurnal": "43b69581074ca000",
    "flash-crowd": "994644fad27a7919",
    "overload-surge": "df37875f3395cdac",
    "zone-outage": "295b632274a17828",
}


def _spec_hash(name: str) -> str:
    spec = load_scenario(name).spec
    canon = json.dumps(spec.to_dict(), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def test_pack_contains_the_curated_scenarios():
    assert scenario_names() == EXPECTED
    assert len(scenario_names()) >= 9


def test_unknown_scenario_lists_pack():
    with pytest.raises(UnknownScenarioError) as info:
        load_scenario("mystery")
    for name in EXPECTED:
        assert repr(name) in str(info.value)


@pytest.mark.parametrize("name", EXPECTED)
def test_entry_is_a_valid_replayable_spec(name):
    entry = load_scenario(name)
    assert entry.name == name
    assert entry.description
    spec = entry.spec
    assert spec.horizon >= MIN_HORIZON
    assert spec.nodes >= 3
    assert spec.controller_replicas == 1  # policy-portable across the arena
    for workload in spec.workloads:
        assert workload.kind in WORKLOAD_KINDS
    for event in spec.chaos:
        assert event.domain in KNOWN_DOMAINS
        assert 0 <= event.at < spec.horizon
    # Round-trips through the repro-file format unchanged.
    assert type(spec).from_json(spec.to_json()) == spec
    # Pack metadata is carried alongside: the version stamp records the
    # pack version the entry was introduced at, never newer than the
    # pack itself, and the spec format is one the fuzzer replays.
    data = json.loads(entry.path.read_text())
    assert 1 <= data["pack_version"] <= PACK_VERSION
    assert data["format"] in SUPPORTED_FORMATS


@pytest.mark.parametrize("name", EXPECTED)
def test_entry_builds_a_platform(name):
    spec = load_scenario(name).spec
    platform = build_platform(spec)
    assert len(platform.apps) == len(spec.workloads)


def test_calm_replays_clean_under_invariants():
    spec = load_scenario("calm").spec
    result = run_episode(spec, every=5)
    assert result.ok, result.violations
    assert result.events_executed > 0


class TestPackV2Contract:
    """The append-only contract and the v2 trace-realism entries."""

    def test_pack_version_is_2(self):
        assert PACK_VERSION == 2

    @pytest.mark.parametrize("name", V1_ENTRIES)
    def test_v1_entries_are_untouched(self, name):
        assert _spec_hash(name) == V1_SPEC_HASHES[name], (
            f"v1 pack entry {name!r} changed — the pack contract is "
            "append-only; add a new entry and bump PACK_VERSION instead"
        )

    @pytest.mark.parametrize("name", V2_ENTRIES)
    def test_v2_entries_are_v4_specs(self, name):
        entry = load_scenario(name)
        data = json.loads(entry.path.read_text())
        assert data["pack_version"] == 2
        assert data["format"] == 4
        spec = entry.spec
        # Each v2 entry arms at least one trace-realism model.
        assert (
            spec.arrival_model != "rate"
            or spec.heavy_tail
            or spec.surge
        )

    @pytest.mark.parametrize("name", V2_ENTRIES)
    def test_v2_entries_replay_clean_under_invariants(self, name):
        result = run_episode(load_scenario(name).spec, every=8)
        assert result.ok, result.violations
        assert result.events_executed > 0

    def test_v2_cell_scores_byte_identical_same_seed(self):
        entry = load_scenario("heavy-tail")
        first = run_cell("adaptive", entry, horizon=240.0)
        second = run_cell("adaptive", entry, horizon=240.0)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
