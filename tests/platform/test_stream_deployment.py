"""Platform + loader integration for stream jobs."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.platform.loader import ConfigError, platform_from_dict
from repro.workloads.plo import LatencyPLO
from repro.workloads.stream import Operator, StreamJob
from repro.workloads.traces import ConstantTrace


def test_deploy_stream_managed_end_to_end():
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=4),
        policy="adaptive",
    )
    job = platform.deploy_stream(
        "events",
        trace=ConstantTrace(300),
        operators=[Operator("parse", 0.004), Operator("agg", 0.002)],
        allocation=ResourceVector(cpu=0.5, memory=2, disk_bw=10, net_bw=40),
        plo=LatencyPLO(5.0, window=30),
    )
    platform.run(1800.0)
    assert isinstance(job, StreamJob)
    assert job.current_lag_seconds < 5.0
    result = platform.result()
    assert result.violation_fraction("events") < 0.25


def test_stream_via_loader():
    config = {
        "duration": 600,
        "cluster": {"nodes": 3},
        "streams": [{
            "name": "clicks",
            "trace": {"kind": "constant", "value": 100},
            "operators": [
                {"name": "parse", "cpu_seconds": 0.002},
                {"name": "filter", "cpu_seconds": 0.001, "selectivity": 0.5},
            ],
            "allocation": {"cpu": 1, "memory": 2, "disk_bw": 10, "net_bw": 40},
            "plo": {"kind": "latency", "target": 5.0},
        }],
    }
    platform, duration = platform_from_dict(config)
    platform.run(duration)
    job = platform.apps["clicks"]
    assert job.output_selectivity == pytest.approx(0.5)
    assert job.current_rate == pytest.approx(100, rel=0.1)


def test_stream_loader_validation():
    config = {
        "streams": [{
            "name": "bad",
            "trace": {"kind": "constant", "value": 1},
            "operators": [{"name": "x", "cpu_seconds": -1}],
            "allocation": {"cpu": 1},
        }],
    }
    with pytest.raises(ConfigError, match="stream 'bad'"):
        platform_from_dict(config)
