"""Unit tests for the EvolvePlatform facade."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec
from repro.platform.evolve import EvolvePlatform
from repro.scheduler.converged import ConvergedScheduler, SiloedScheduler
from repro.scheduler.kube import KubeScheduler
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20)


def small_platform(**kwargs):
    kwargs.setdefault("cluster_spec", ClusterSpec(node_count=3))
    return EvolvePlatform(**kwargs)


class TestConstruction:
    @pytest.mark.parametrize(
        "name,cls",
        [("kube", KubeScheduler), ("converged", ConvergedScheduler),
         ("siloed", SiloedScheduler)],
    )
    def test_scheduler_selection(self, name, cls):
        platform = small_platform(scheduler=name)
        assert isinstance(platform.scheduler, cls)

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            small_platform(scheduler="mystery")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            small_platform(policy="mystery")

    @pytest.mark.parametrize("policy", ["static", "hpa", "vpa", "adaptive"])
    def test_policy_selection(self, policy):
        platform = small_platform(policy=policy)
        assert platform.policy is not None

    def test_default_silos_partition_nodes(self):
        platform = small_platform(scheduler="siloed")
        pools = platform.scheduler.pools
        all_nodes = [n for names in pools.values() for n in names]
        assert sorted(all_nodes) == sorted(platform.cluster.nodes)


class TestDeployment:
    def test_deploy_and_run_microservice(self):
        platform = small_platform(policy="adaptive")
        svc = platform.deploy_microservice(
            "svc", trace=ConstantTrace(50), demands=DEMANDS,
            allocation=ALLOC, plo=LatencyPLO(0.05),
        )
        platform.run(120.0)
        assert svc.running_pods()
        assert svc.current_throughput > 0
        result = platform.result()
        assert "svc" in result.trackers

    def test_managed_adaptive_requires_plo(self):
        platform = small_platform(policy="adaptive")
        with pytest.raises(ValueError, match="PLO"):
            platform.deploy_microservice(
                "svc", trace=ConstantTrace(50), demands=DEMANDS, allocation=ALLOC,
            )

    def test_unmanaged_without_plo_ok(self):
        platform = small_platform(policy="adaptive")
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(50), demands=DEMANDS,
            allocation=ALLOC, managed=False,
        )
        platform.run(30.0)

    def test_duplicate_name_rejected(self):
        platform = small_platform()
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(1), demands=DEMANDS,
            allocation=ALLOC, plo=LatencyPLO(0.05),
        )
        with pytest.raises(ValueError, match="already"):
            platform.deploy_microservice(
                "svc", trace=ConstantTrace(1), demands=DEMANDS,
                allocation=ALLOC, plo=LatencyPLO(0.05),
            )

    def test_bigdata_job_completes(self):
        platform = small_platform()
        job = platform.submit_bigdata(
            "job", stages=[Stage("map", 100.0)],
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=50),
            executors=2,
        )
        platform.run(600.0)
        assert job.done
        assert platform.result().makespans["job"] is not None

    def test_bigdata_with_dataset_and_deadline(self):
        platform = small_platform()
        from repro.storage.placement import spread_blocks
        spread_blocks(
            platform.store, "sales", total_mb=500, block_mb=50,
            nodes=list(platform.cluster.nodes),
        )
        job = platform.submit_bigdata(
            "etl", stages=[Stage("scan", 50.0, input_mb=500)],
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=50),
            dataset="sales", deadline=400.0,
        )
        platform.run(500.0)
        assert job.done
        assert "etl" in platform.result().trackers  # deadline PLO tracked

    def test_hpc_job_gang_scheduled(self):
        platform = small_platform(scheduler="converged")
        job = platform.submit_hpc(
            "mpi", ranks=3, duration=60.0,
            allocation=ResourceVector(cpu=4, memory=4, disk_bw=5, net_bw=50),
        )
        platform.run(300.0)
        assert job.done
        result = platform.result()
        assert result.hpc_waits["mpi"] is not None
        assert result.makespans["mpi"] == pytest.approx(60, abs=15)

    def test_delayed_submission(self):
        platform = small_platform()
        job = platform.submit_hpc(
            "late", ranks=1, duration=30.0,
            allocation=ResourceVector(cpu=2, memory=2),
            delay=100.0,
        )
        platform.run(50.0)
        assert job.submitted_at is None
        platform.run(100.0)
        assert job.submitted_at == pytest.approx(100.0)


class TestResult:
    def test_result_aggregates(self):
        platform = small_platform(policy="adaptive")
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(100), demands=DEMANDS,
            allocation=ALLOC, plo=LatencyPLO(0.05),
        )
        platform.run(300.0)
        result = platform.result()
        assert result.duration == 300.0
        assert 0 <= result.violation_fraction("svc") <= 1
        assert 0 <= result.total_violation_fraction() <= 1
        assert result.utilization.overall_alloc > 0
        assert "scale_outs" in result.scale_events

    def test_total_violation_fraction_empty(self):
        platform = small_platform()
        platform.run(30.0)
        assert platform.result().total_violation_fraction() == 0.0

    def test_run_is_resumable(self):
        platform = small_platform()
        platform.run(50.0)
        assert platform.engine.now == 50.0
        platform.run(50.0)
        assert platform.engine.now == 100.0


class TestDanglingEpisodes:
    """A fault that is never healed must not leave its episode open past
    the end of the run — open episodes have no duration and silently
    drop out of (or skew) the MTTR statistics."""

    def test_result_closes_unhealed_episodes(self):
        platform = small_platform()
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(50), demands=DEMANDS,
            allocation=ALLOC, plo=LatencyPLO(0.05), replicas=2,
        )
        platform.run(100.0)
        platform.injector.fail_node("node-00")  # never recovered
        platform.run(200.0)
        result = platform.result()
        assert result.duration == 300.0
        episodes = platform.fault_log.by_kind("node-crash")
        assert episodes and all(not e.active for e in episodes)
        assert episodes[-1].end == 300.0
        assert episodes[-1].duration() == pytest.approx(200.0)

    def test_recovery_report_sees_closed_episodes(self):
        from repro.analysis.recovery import fault_recovery_report

        platform = small_platform(policy="adaptive")
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(100), demands=DEMANDS,
            allocation=ALLOC, plo=LatencyPLO(0.05), replicas=2,
        )
        platform.run(100.0)
        platform.injector.fail_node("node-00")
        platform.run(200.0)
        platform.result()
        reports = fault_recovery_report(
            platform.fault_log, platform.collector, ["svc"],
        )
        assert reports
        # Every episode now has a definite MTTR, including the dangler.
        assert all(r.mttr is not None for r in reports)

    def test_result_is_idempotent_on_episode_ends(self):
        platform = small_platform()
        platform.run(50.0)
        platform.injector.fail_node("node-00")
        platform.run(50.0)
        platform.result()
        end_first = platform.fault_log.episodes[0].end
        platform.run(100.0)  # resumable run past the first result()
        platform.result()
        # close_open only touches episodes still open: the first close
        # sticks even after the sim is resumed and re-aggregated.
        assert platform.fault_log.episodes[0].end == end_first
