"""Tests for heterogeneous clusters, selectors, and FPGA acceleration."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig, build_nodes
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.traces import ConstantTrace


GENERAL = ResourceVector(cpu=16, memory=64, disk_bw=500, net_bw=1250)
FPGA = ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=1250)


def hetero_spec():
    return ClusterSpec(groups=(
        NodeGroup("worker", 3, GENERAL),
        NodeGroup("fpga", 2, FPGA, labels={"accelerator": "fpga"}),
    ))


class TestNodeGroups:
    def test_groups_materialize(self):
        nodes = build_nodes(hetero_spec())
        assert len(nodes) == 5
        names = [n.name for n in nodes]
        assert names[:3] == ["worker-00", "worker-01", "worker-02"]
        assert names[3:] == ["fpga-00", "fpga-01"]
        assert nodes[3].labels == {"accelerator": "fpga"}
        assert nodes[3].capacity == FPGA

    def test_total_nodes(self):
        assert hetero_spec().total_nodes == 5
        assert ClusterSpec(node_count=4).total_nodes == 4

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            NodeGroup("g", 0, GENERAL)
        with pytest.raises(ValueError):
            NodeGroup("g", 1, ResourceVector(cpu=-1))


class TestNodeSelector:
    def test_selector_restricts_placement(self):
        platform = EvolvePlatform(
            cluster_spec=hetero_spec(), config=PlatformConfig(seed=1),
        )
        svc = platform.deploy_microservice(
            "pinned", trace=ConstantTrace(10),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=1, memory=1, disk_bw=10, net_bw=10),
            managed=False, replicas=2,
            node_selector={"accelerator": "fpga"},
        )
        platform.run(60.0)
        assert len(svc.running_pods()) == 2
        assert all(p.node_name.startswith("fpga-") for p in svc.running_pods())

    def test_unsatisfiable_selector_stays_pending(self):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=2), config=PlatformConfig(seed=1),
        )
        svc = platform.deploy_microservice(
            "stuck", trace=ConstantTrace(10),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=1, memory=1),
            managed=False,
            node_selector={"accelerator": "fpga"},
        )
        platform.run(30.0)
        assert svc.running_pods() == []


class TestAcceleration:
    def run_job(self, accelerator):
        platform = EvolvePlatform(
            cluster_spec=hetero_spec(), config=PlatformConfig(seed=5),
        )
        job = platform.submit_bigdata(
            "train",
            stages=[Stage("kernel", 2000.0, accel_speedup=5.0)],
            allocation=ResourceVector(cpu=4, memory=8, disk_bw=50, net_bw=50),
            executors=2,
            accelerator=accelerator,
        )
        platform.run(3 * 3600.0)
        return job, platform

    def test_preference_steers_executors_to_fpga(self):
        job, _platform = self.run_job("fpga")
        # Job finished; executors ran on the FPGA group.
        assert job.done

    def test_accelerated_job_faster(self):
        accel, _p1 = self.run_job("fpga")
        plain, _p2 = self.run_job(None)
        assert accel.done and plain.done
        assert accel.makespan() < plain.makespan() / 2

    def test_accel_speedup_validation(self):
        with pytest.raises(ValueError):
            Stage("s", 1.0, accel_speedup=0.5)

    def test_acceleration_needs_matching_label(self):
        """An accelerator class with no matching nodes gives no speedup."""
        platform = EvolvePlatform(
            cluster_spec=hetero_spec(), config=PlatformConfig(seed=5),
        )
        job = platform.submit_bigdata(
            "train",
            stages=[Stage("kernel", 2000.0, accel_speedup=5.0)],
            allocation=ResourceVector(cpu=4, memory=8, disk_bw=50, net_bw=50),
            executors=2,
            accelerator="tpu",  # nothing is labelled tpu
        )
        platform.run(3 * 3600.0)
        assert job.done
        # 2000 cpu-s over 2 executors × 4 cores ⇒ ~250 s, no speedup.
        assert job.makespan() == pytest.approx(250, abs=40)
