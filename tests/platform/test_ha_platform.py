"""Platform wiring for the replicated control plane, and the RNG-isolation
regression: enabling HA must not perturb seeded workload streams."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace, NoisyTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20)


def build(replicas: int, *, seed: int = 7) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=seed, controller_replicas=replicas),
        policy="adaptive",
    )
    # An RNG-driven trace: any stray draw against its stream would shift
    # every sample after it, so series equality below is a sharp detector.
    trace = NoisyTrace(
        ConstantTrace(80.0), rel_std=0.3, horizon=1200.0,
        rng=platform.rng.stream("trace/svc"),
    )
    platform.deploy_microservice(
        "svc", trace=trace, demands=DEMANDS, allocation=ALLOC,
        plo=LatencyPLO(0.05),
    )
    return platform


def samples(platform: EvolvePlatform, name: str) -> list[tuple[float, float]]:
    return platform.collector.series(name).window(-1.0, platform.engine.now)


class TestWiring:
    def test_legacy_single_controller_has_no_plane(self):
        platform = build(1)
        assert platform.control_plane is None
        assert platform.statestore is None
        assert platform.replica_policies == [platform.policy]

    def test_replicas_build_plane_and_statestore(self):
        platform = build(3)
        assert platform.control_plane is not None
        assert platform.statestore is not None
        assert len(platform.replica_policies) == 3
        assert platform.control_plane.store is platform.statestore

    def test_controller_ha_flag_builds_single_replica_plane(self):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=3),
            config=PlatformConfig(controller_ha=True),
            policy="adaptive",
        )
        assert platform.control_plane is not None
        assert len(platform.replica_policies) == 1

    def test_ha_requires_adaptive_policy(self):
        with pytest.raises(ValueError, match="adaptive"):
            EvolvePlatform(
                cluster_spec=ClusterSpec(node_count=3),
                config=PlatformConfig(controller_replicas=3),
                policy="static",
            )

    def test_controller_fault_domains_require_plane(self):
        platform = build(1)
        with pytest.raises(ValueError, match="control plane"):
            platform.enable_chaos(domains=["controller-crash"])

    def test_controller_fault_domains_with_plane(self):
        platform = build(3)
        monkey = platform.enable_chaos(
            domains=["controller-crash", "partition"], mtbf=600.0
        )
        assert len(monkey.domains) == 2


class TestRngIsolation:
    """The HA layer draws only from its dedicated ``ha/election`` stream.

    Two properties pin that down: (1) seeded HA runs are bit-identical,
    and (2) a legacy single-controller run and a 3-replica HA run of the
    same seed produce the *same* workload and allocation trajectories —
    election traffic never touches a workload stream, and with no faults
    the elected leader decides exactly like the lone controller.
    """

    SERIES = ("app/svc/latency", "app/svc/alloc/cpu", "app/svc/usage/cpu")

    def test_seeded_ha_runs_are_bit_identical(self):
        a, b = build(3), build(3)
        a.run(600.0)
        b.run(600.0)
        for name in self.SERIES:
            assert samples(a, name) == samples(b, name), name
        assert a.result().total_violation_fraction() == (
            b.result().total_violation_fraction()
        )

    def test_ha_does_not_perturb_workload_streams(self):
        legacy, ha = build(1), build(3)
        legacy.run(600.0)
        ha.run(600.0)
        for name in self.SERIES:
            assert samples(legacy, name) == samples(ha, name), name
