"""Unit tests for the CLI."""

import json

import pytest

from repro.cli import main


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    assert "adaptive" in out
    assert "converged" in out


def test_demo_command(capsys):
    assert main(["demo", "--duration", "600", "--policy", "adaptive"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out
    assert "PLO violations" in out
    assert "cluster: mean usage" in out


def test_demo_static_policy(capsys):
    assert main(["demo", "--duration", "300", "--policy", "static"]) == 0


def test_run_command(tmp_path, capsys):
    config = {
        "seed": 1,
        "duration": 600,
        "cluster": {"nodes": 3},
        "services": [
            {
                "name": "api",
                "trace": {"kind": "constant", "value": 50},
                "demands": {"cpu_seconds": 0.01},
                "allocation": {"cpu": 1, "memory": 1, "disk_bw": 10,
                               "net_bw": 10},
                "plo": {"kind": "latency", "target": 0.1},
            }
        ],
    }
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(config))
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "api" in out
    assert "alloc cost" in out


def test_run_duration_override(tmp_path, capsys):
    config = {"duration": 86_400, "cluster": {"nodes": 2}}
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(config))
    assert main(["run", str(path), "--duration", "60"]) == 0
    assert "0.02 h" in capsys.readouterr().out


def test_run_missing_file(capsys):
    assert main(["run", "/nonexistent.json"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_bad_config(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{\"services\": [{}]}")
    assert main(["run", str(path)]) == 2


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
