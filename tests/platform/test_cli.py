"""Unit tests for the CLI."""

import json

import pytest

from repro.cli import main


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    assert "adaptive" in out
    assert "converged" in out


def test_demo_command(capsys):
    assert main(["demo", "--duration", "600", "--policy", "adaptive"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out
    assert "PLO violations" in out
    assert "cluster: mean usage" in out


def test_demo_static_policy(capsys):
    assert main(["demo", "--duration", "300", "--policy", "static"]) == 0


def test_run_command(tmp_path, capsys):
    config = {
        "seed": 1,
        "duration": 600,
        "cluster": {"nodes": 3},
        "services": [
            {
                "name": "api",
                "trace": {"kind": "constant", "value": 50},
                "demands": {"cpu_seconds": 0.01},
                "allocation": {"cpu": 1, "memory": 1, "disk_bw": 10,
                               "net_bw": 10},
                "plo": {"kind": "latency", "target": 0.1},
            }
        ],
    }
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(config))
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "api" in out
    assert "alloc cost" in out


def test_run_duration_override(tmp_path, capsys):
    config = {"duration": 86_400, "cluster": {"nodes": 2}}
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(config))
    assert main(["run", str(path), "--duration", "60"]) == 0
    assert "0.02 h" in capsys.readouterr().out


def test_run_missing_file(capsys):
    assert main(["run", "/nonexistent.json"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_bad_config(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{\"services\": [{}]}")
    assert main(["run", str(path)]) == 2


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_command_chrome(tmp_path, capsys):
    out = tmp_path / "run.json"
    assert main(["trace", str(out), "--duration", "600"]) == 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert events
    stdout = capsys.readouterr().out
    assert "trace events" in stdout
    assert "provenance records" in stdout
    # At least one applied actuation chains back to a scrape round.
    by_id = {e["args"]["span_id"]: e for e in events
             if e["ph"] == "X" and "span_id" in e.get("args", {})}
    chained = 0
    for event in by_id.values():
        if (event["name"] != "actuate"
                or event["args"].get("outcome") != "applied"):
            continue
        node = event
        while node is not None and node["name"] != "scrape":
            node = by_id.get(node["args"].get("parent_id"))
        chained += node is not None
    assert chained >= 1


def test_trace_command_jsonl(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(["trace", str(out), "--format", "jsonl",
                 "--duration", "600"]) == 0
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    kinds = {line["type"] for line in lines}
    assert "span" in kinds
    assert "provenance" in kinds
    assert "JSONL lines" in capsys.readouterr().out


def test_trace_command_filter_and_since(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(["trace", str(out), "--format", "jsonl",
                 "--duration", "600", "--filter", "actuate",
                 "--since", "300"]) == 0
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    spans = [line for line in lines if line["type"] == "span"]
    assert spans
    assert all(line["name"].startswith("actuate") for line in spans)
    assert all(line["start"] >= 300.0 for line in spans)


def test_report_command_calm(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["report", "calm", "--duration", "600",
                 "--output", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "svc_latency" in stdout
    assert "overall attainment" in stdout
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.run_report/v1"
    assert doc["slos"]["svc_latency"]["attainment"] == 1.0


def test_report_command_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["report", "atlantis"])
