"""Arena harness tests: scorecard determinism, leaderboard, rendering."""

import json

import pytest

from repro.arena import (
    METRICS,
    Scorecard,
    _ActuationLedger,
    _leaderboard,
    derive_slos,
    leaderboard_markdown,
    leaderboard_text,
    run_arena,
    run_cell,
)
from repro.scenarios import load_scenario

#: A deliberately small sweep so the determinism test stays CI-cheap:
#: two policies x two scenarios, shortened horizon.
SMALL = dict(
    policies=("static", "adaptive"),
    scenarios=("calm", "flash-crowd"),
    seed=17,
    horizon=240.0,
)


@pytest.fixture(scope="module")
def payload():
    return run_arena(**SMALL)


class TestScorecard:
    def test_cell_scores_every_metric(self):
        card = run_cell(
            "adaptive", load_scenario("calm"), seed=9, horizon=240.0
        )
        assert isinstance(card, Scorecard)
        data = card.to_dict()
        assert tuple(data) == METRICS
        assert 0.0 <= data["plo_violation_rate"] <= 1.0
        assert 0.0 <= data["slo_attainment"] <= 1.0
        assert data["cost_dollars"] > 0
        assert data["events_executed"] > 0
        assert data["mttr_s"] is None  # calm has no chaos

    def test_metrics_are_byte_identical_across_runs(self, payload):
        again = run_arena(**SMALL)
        assert json.dumps(payload["metrics"], sort_keys=True) == json.dumps(
            again["metrics"], sort_keys=True
        )

    def test_runner_contract_shape(self, payload):
        assert payload["seed"] == SMALL["seed"]
        assert payload["events_executed"] == sum(
            cell["events_executed"]
            for cell in payload["metrics"]["cells"].values()
        )
        assert set(payload["metrics"]["cells"]) == {
            "static/calm",
            "static/flash-crowd",
            "adaptive/calm",
            "adaptive/flash-crowd",
        }
        # Wall-clock stays out of metrics, one timing entry per cell.
        assert len(payload["timing"]) == 4
        assert all(k.startswith("wall_s/") for k in payload["timing"])


class TestLeaderboard:
    def test_ranked_by_violation_then_cost(self, payload):
        board = payload["metrics"]["leaderboard"]
        assert [row["rank"] for row in board] == [1, 2]
        keys = [
            (row["mean_violation_rate"], row["total_cost_dollars"])
            for row in board
        ]
        assert keys == sorted(keys)

    def test_wins_require_strict_best(self):
        def card(policy, scenario, viol):
            return Scorecard(
                policy=policy,
                scenario=scenario,
                plo_violation_rate=viol,
                slo_attainment=1.0,
                cost_dollars=1.0,
                slack_frac=0.5,
                convergence_s=0.0,
                flap_count=0,
                mttr_s=None,
                events_executed=10,
            )

        board = _leaderboard(
            [
                card("a", "s1", 0.1),
                card("b", "s1", 0.2),
                card("a", "s2", 0.3),  # tie: nobody wins s2
                card("b", "s2", 0.3),
            ]
        )
        by_policy = {row["policy"]: row for row in board}
        assert by_policy["a"]["wins"] == 1
        assert by_policy["b"]["wins"] == 0
        assert by_policy["a"]["rank"] == 1

    def test_rendering(self, payload):
        text = leaderboard_text(payload)
        markdown = leaderboard_markdown(payload)
        for out in (text, markdown):
            assert "policy" in out
            assert "adaptive" in out
            assert "static" in out
        assert markdown.count("|") > 10
        assert f"seed {SMALL['seed']}" in markdown


class TestDeriveSLOs:
    def test_micro_and_stream_get_slos_with_margin(self):
        spec = load_scenario("data-fault").spec
        slos = derive_slos(spec)
        covered = {
            w.name for w in spec.workloads if w.kind in ("micro", "stream")
        }
        assert {s.series.split("/")[1] for s in slos} == covered
        for slo in slos:
            workload = next(
                w for w in spec.workloads if w.name in slo.series
            )
            assert slo.objective == pytest.approx(
                float(workload.params["plo"]) * 1.4
            )


class TestActuationLedger:
    def test_counts_direction_reversals_per_stream(self):
        ledger = _ActuationLedger()
        # app1 replicas: up, down, up -> 2 flaps.
        for direction in (1, -1, 1):
            ledger._push("app1", "replicas", direction)
        # app1 resize: monotone growth -> 0 flaps.
        for direction in (1, 1, 1):
            ledger._push("app1", "resize", direction)
        # app2 replicas: one reversal -> 1 flap; zero deltas ignored.
        for direction in (1, 0, -1, 0):
            ledger._push("app2", "replicas", direction)
        assert ledger.flap_count() == 3
