"""Unit tests for the declarative config loader."""

import json

import numpy as np
import pytest

from repro.platform.loader import (
    ConfigError,
    cluster_spec_from_dict,
    demands_from_dict,
    platform_from_dict,
    platform_from_json,
    plo_from_dict,
    trace_from_dict,
)
from repro.workloads.microservice import DemandPhase, ServiceDemands
from repro.workloads.plo import LatencyPLO, ThroughputPLO


RNG = np.random.default_rng(0)


class TestTraceFromDict:
    def test_constant(self):
        assert trace_from_dict({"kind": "constant", "value": 5}, RNG).rate(0) == 5

    def test_step(self):
        trace = trace_from_dict(
            {"kind": "step", "steps": [[10, 5]], "initial": 1}, RNG
        )
        assert trace.rate(0) == 1 and trace.rate(20) == 5

    def test_diurnal(self):
        trace = trace_from_dict(
            {"kind": "diurnal", "base": 100, "amplitude": 50, "period": 100}, RNG
        )
        assert trace.rate(25) == pytest.approx(150)

    def test_composite_nested(self):
        trace = trace_from_dict(
            {
                "kind": "composite",
                "components": [
                    {"kind": "constant", "value": 1},
                    {"kind": "constant", "value": 2},
                ],
            },
            RNG,
        )
        assert trace.rate(0) == 3

    def test_noisy_wraps_base(self):
        trace = trace_from_dict(
            {"kind": "noisy", "base": {"kind": "constant", "value": 100},
             "rel_std": 0.0, "horizon": 100},
            RNG,
        )
        assert trace.rate(0) == pytest.approx(100)

    def test_replay_inline(self):
        trace = trace_from_dict(
            {"kind": "replay", "samples": [[0, 10], [50, 20]]}, RNG
        )
        assert trace.rate(60) == 20

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown trace kind"):
            trace_from_dict({"kind": "wavelet"}, RNG)

    def test_missing_kind(self):
        with pytest.raises(ConfigError, match="missing required key"):
            trace_from_dict({}, RNG)

    def test_bad_params_reported(self):
        with pytest.raises(ConfigError, match="constant"):
            trace_from_dict({"kind": "constant", "value": -1}, RNG)


class TestOtherBuilders:
    def test_plo_latency(self):
        plo = plo_from_dict({"kind": "latency", "target": 0.05})
        assert isinstance(plo, LatencyPLO)

    def test_plo_throughput(self):
        plo = plo_from_dict({"kind": "throughput", "target": 100})
        assert isinstance(plo, ThroughputPLO)

    def test_plo_unknown(self):
        with pytest.raises(ConfigError):
            plo_from_dict({"kind": "deadline2"})

    def test_demands_single(self):
        demands = demands_from_dict({"cpu_seconds": 0.01})
        assert isinstance(demands, ServiceDemands)

    def test_demands_phased(self):
        phases = demands_from_dict([
            {"start_time": 0, "cpu_seconds": 0.01},
            {"start_time": 100, "cpu_seconds": 0.02},
        ])
        assert all(isinstance(p, DemandPhase) for p in phases)

    def test_cluster_spec_homogeneous(self):
        spec = cluster_spec_from_dict({"nodes": 4, "capacity": {"cpu": 8}})
        assert spec.node_count == 4
        assert spec.node_capacity.cpu == 8

    def test_cluster_spec_groups(self):
        spec = cluster_spec_from_dict({
            "groups": [
                {"name": "w", "count": 2, "capacity": {"cpu": 8}},
                {"name": "f", "count": 1, "capacity": {"cpu": 4},
                 "labels": {"accelerator": "fpga"}},
            ]
        })
        assert spec.total_nodes == 3

    def test_bad_resource_key(self):
        with pytest.raises(ConfigError):
            cluster_spec_from_dict({"capacity": {"gpu": 1}})

    def test_zones(self):
        spec = cluster_spec_from_dict({"nodes": 4, "zones": 2})
        assert spec.zones == 2

    def test_hpc_resilience_knobs(self):
        config = {
            "duration": 60,
            "cluster": {"nodes": 2},
            "hpc": [{
                "name": "sim", "ranks": 1, "job_duration": 30,
                "allocation": {"cpu": 2, "memory": 2},
                "zone_penalty": 0.5, "checkpoint_interval": 10,
            }],
        }
        platform, _d = platform_from_dict(config)
        job = platform.apps["sim"]
        assert job.zone_penalty == 0.5
        assert job.checkpoint_interval == 10


FULL_CONFIG = {
    "seed": 11,
    "duration": 900,
    "cluster": {"nodes": 4},
    "scheduler": "converged",
    "policy": "adaptive",
    "services": [
        {
            "name": "web",
            "trace": {"kind": "constant", "value": 80},
            "demands": {"cpu_seconds": 0.01, "base_latency": 0.01},
            "allocation": {"cpu": 1, "memory": 1, "disk_bw": 20, "net_bw": 20},
            "plo": {"kind": "latency", "target": 0.05},
        }
    ],
    "bigdata": [
        {
            "name": "etl",
            "stages": [{"name": "map", "work": 200}],
            "allocation": {"cpu": 2, "memory": 4, "disk_bw": 50, "net_bw": 50},
            "executors": 2,
        }
    ],
    "hpc": [
        {
            "name": "sim",
            "ranks": 2,
            "job_duration": 120,
            "allocation": {"cpu": 4, "memory": 4, "disk_bw": 5, "net_bw": 50},
        }
    ],
}


class TestPlatformFromDict:
    def test_full_config_runs(self):
        platform, duration = platform_from_dict(FULL_CONFIG)
        assert duration == 900
        assert set(platform.apps) == {"web", "etl", "sim"}
        platform.run(duration)
        result = platform.result()
        assert result.makespans["etl"] is not None
        assert result.makespans["sim"] is not None
        assert result.violation_fraction("web") < 0.2

    def test_chaos_section(self):
        config = dict(FULL_CONFIG, chaos={"mtbf": 100, "repair_time": 50})
        platform, _d = platform_from_dict(config)
        assert platform.chaos is not None

    def test_invalid_duration(self):
        with pytest.raises(ConfigError):
            platform_from_dict({"duration": 0})

    def test_missing_service_name(self):
        with pytest.raises(ConfigError, match="name"):
            platform_from_dict({"services": [{}]})

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(FULL_CONFIG))
        platform, duration = platform_from_json(str(path))
        assert duration == 900

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="invalid JSON"):
            platform_from_json(str(path))

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="top level"):
            platform_from_json(str(path))
