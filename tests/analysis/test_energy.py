"""Unit tests for the energy model."""

import pytest

from repro.analysis.energy import EnergyReport, PowerModel, cluster_energy
from tests.conftest import make_spec


class TestPowerModel:
    def test_parked_when_empty(self):
        model = PowerModel(parked_watts=10, idle_watts=100, peak_watts=300)
        assert model.node_power(0.0, 0.0) == 10

    def test_idle_when_allocated_but_unused(self):
        model = PowerModel(parked_watts=10, idle_watts=100, peak_watts=300)
        assert model.node_power(0.5, 0.0) == 100

    def test_linear_in_utilization(self):
        model = PowerModel(parked_watts=10, idle_watts=100, peak_watts=300)
        assert model.node_power(0.5, 0.5) == 200
        assert model.node_power(0.5, 1.0) == 300

    def test_utilization_clamped(self):
        model = PowerModel()
        assert model.node_power(0.5, 2.0) == model.node_power(0.5, 1.0)

    def test_invalid_ordering(self):
        with pytest.raises(ValueError):
            PowerModel(parked_watts=200, idle_watts=100)


class TestClusterEnergy:
    def test_parked_cluster_energy(self, engine, api, collector):
        collector.start()
        engine.run_until(3600.0)
        model = PowerModel(parked_watts=36, idle_watts=100, peak_watts=300)
        report = cluster_energy(
            collector, ["node-0"], start=0.0, end=3600.0, model=model
        )
        # 36 W for 1 h = 0.036 kWh.
        assert report.per_node_kwh["node-0"] == pytest.approx(0.036, rel=0.05)

    def test_busy_node_draws_more(self, engine, api, collector):
        api.create_pod(make_spec("p", cpu=8))
        api.bind_pod("p", "node-0")
        collector.start()
        engine.run_until(3600.0)
        report = cluster_energy(
            collector, ["node-0", "node-1"], start=0.0, end=3600.0
        )
        assert report.per_node_kwh["node-0"] > report.per_node_kwh["node-1"] * 3

    def test_never_scraped_counts_as_parked(self, engine, api, collector):
        model = PowerModel(parked_watts=36, idle_watts=100, peak_watts=300)
        report = cluster_energy(
            collector, ["node-0"], start=0.0, end=3600.0, model=model
        )
        assert report.per_node_kwh["node-0"] == pytest.approx(0.036)

    def test_total_and_mean_watts(self):
        report = EnergyReport(window=3600.0, per_node_kwh={"a": 0.1, "b": 0.2})
        assert report.total_kwh == pytest.approx(0.3)
        assert report.mean_watts == pytest.approx(300.0)

    def test_invalid_window(self, collector):
        with pytest.raises(ValueError):
            cluster_energy(collector, [], start=10.0, end=10.0)


def test_consolidation_saves_energy(engine):
    """Consolidate-packing leaves nodes parked that spread keeps warm."""
    from repro.cluster.resources import ResourceVector
    from repro.platform.config import ClusterSpec, PlatformConfig
    from repro.platform.evolve import EvolvePlatform
    from repro.workloads.microservice import ServiceDemands
    from repro.workloads.traces import ConstantTrace

    def run(packing):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=6),
            config=PlatformConfig(seed=4),
            scheduler="converged",
            scheduler_kwargs={"packing": packing, "interference_weight": 0.0},
        )
        for i in range(6):
            platform.deploy_microservice(
                f"svc-{i}", trace=ConstantTrace(20),
                demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
                allocation=ResourceVector(cpu=1, memory=2, disk_bw=10, net_bw=10),
                managed=False,
            )
        platform.run(3600.0)
        report = cluster_energy(
            platform.collector, list(platform.cluster.nodes),
            start=0.0, end=3600.0,
        )
        return report.total_kwh

    assert run("consolidate") < run("spread") * 0.8
