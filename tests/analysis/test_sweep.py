"""Unit tests for the sweep helper."""

import pytest

from repro.analysis.sweep import sweep


def fake_run(params):
    return {"score": params["a"] * 10 + params["b"],
            "cost": params["a"]}


class TestSweep:
    def test_cartesian_product_order(self):
        result = sweep({"a": [1, 2], "b": [3, 4]}, fake_run)
        assert [(p["a"], p["b"]) for p in result.points] == [
            (1, 3), (1, 4), (2, 3), (2, 4)
        ]

    def test_columns_and_rows(self):
        result = sweep({"a": [1], "b": [2]}, fake_run)
        assert result.columns == ["a", "b", "cost", "score"]
        assert result.rows == [[1, 2, 1, 12]]

    def test_filter_and_series(self):
        result = sweep({"a": [1, 2], "b": [3, 4]}, fake_run)
        assert len(result.filter(a=1)) == 2
        assert result.series("b", "score", a=2) == [(3, 23), (4, 24)]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, fake_run)
        with pytest.raises(ValueError):
            sweep({"a": []}, fake_run)

    def test_inconsistent_metrics_rejected(self):
        calls = [0]

        def flaky(params):
            calls[0] += 1
            return {"x": 1} if calls[0] == 1 else {"y": 2}

        with pytest.raises(ValueError, match="inconsistent"):
            sweep({"a": [1, 2]}, flaky)

    def test_with_real_platform(self):
        """End to end: a two-point sweep over policies."""
        from repro.cluster.resources import ResourceVector
        from repro.platform.config import ClusterSpec, PlatformConfig
        from repro.platform.evolve import EvolvePlatform
        from repro.workloads.microservice import ServiceDemands
        from repro.workloads.plo import LatencyPLO
        from repro.workloads.traces import ConstantTrace

        def run_point(params):
            platform = EvolvePlatform(
                cluster_spec=ClusterSpec(node_count=3),
                config=PlatformConfig(seed=1),
                policy=params["policy"],
            )
            platform.deploy_microservice(
                "svc", trace=ConstantTrace(150),
                demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
                allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=20,
                                          net_bw=20),
                plo=LatencyPLO(0.05, window=30),
            )
            platform.run(900.0)
            return {"violations": platform.result().violation_fraction("svc")}

        result = sweep({"policy": ["static", "adaptive"]}, run_point)
        static, adaptive = result.points
        assert static["violations"] > adaptive["violations"]
