"""Unit tests for trace analysis (reaction latency, critical paths)."""

import pytest

from repro.analysis.traces import (
    actuations,
    critical_path,
    end_to_end_reaction,
    latency_quantiles,
    reaction_latencies,
    triggering_scrape,
)
from repro.obs.tracing import Span, Trace


def make_trace():
    """Two scrape→decide→actuate chains plus one orphan actuation.

    Chain A: scrape@10 → decide@15 (grow) → actuate@15 applied.
    Chain B: scrape@20 → decide@30 (grow) → actuate@32 applied.
    Orphan:  actuate@40 applied, no parent (e.g. replayed WAL record).
    Failed:  actuate@50 failed, child of decide B.
    """
    trace = Trace()

    def add(id, name, t, *, parent=None, **args):
        span = Span(id, name, "", t, parent_id=parent, args=args)
        trace.add(span)
        return span

    add(1, "scrape", 10.0)
    add(2, "decide", 15.0, parent=1, app="web", action="grow")
    add(3, "actuate", 15.0, parent=2, app="web", outcome="applied")
    add(4, "scrape", 20.0)
    add(5, "decide", 30.0, parent=4, app="web", action="grow")
    add(6, "actuate", 32.0, parent=5, app="web", outcome="applied")
    add(7, "actuate", 40.0, app="web", outcome="applied")
    add(8, "actuate", 50.0, parent=5, app="web", outcome="failed")
    add(9, "decide", 35.0, parent=4, app="cache", action="reclaim")
    add(10, "actuate", 35.0, parent=9, app="cache", outcome="applied")
    return trace


class TestActuations:
    def test_applied_only_by_default(self):
        trace = make_trace()
        spans = actuations(trace, "web")
        assert [s.id for s in spans] == [3, 6, 7]

    def test_include_failed(self):
        trace = make_trace()
        spans = actuations(trace, "web", applied_only=False)
        assert [s.id for s in spans] == [3, 6, 7, 8]

    def test_all_apps(self):
        assert len(actuations(make_trace())) == 4


class TestCausalWalk:
    def test_triggering_scrape_found(self):
        trace = make_trace()
        assert triggering_scrape(trace, trace.get(6)).id == 4

    def test_orphan_has_no_scrape(self):
        trace = make_trace()
        assert triggering_scrape(trace, trace.get(7)) is None

    def test_critical_path_is_root_first(self):
        trace = make_trace()
        path = critical_path(trace, trace.get(6))
        assert [s.name for s in path] == ["scrape", "decide", "actuate"]


class TestReactionLatencies:
    def test_latency_is_scrape_to_actuation(self):
        trace = make_trace()
        assert reaction_latencies(trace, "web") == [5.0, 12.0]

    def test_orphans_are_skipped(self):
        # Span 7 has no scrape ancestor; only chains A and B count.
        assert len(reaction_latencies(make_trace(), "web")) == 2

    def test_all_apps_included_without_filter(self):
        assert reaction_latencies(make_trace()) == [5.0, 12.0, 15.0]


class TestLatencyQuantiles:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        q = latency_quantiles(values)
        assert q == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_single_value(self):
        assert latency_quantiles([7.0]) == {"p50": 7.0, "p95": 7.0,
                                            "p99": 7.0}

    def test_custom_quantiles(self):
        q = latency_quantiles([1.0, 2.0, 3.0, 4.0], qs=(25, 75))
        assert q == {"p25": 1.0, "p75": 3.0}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            latency_quantiles([])


class TestEndToEndReaction:
    def test_first_matching_actuation_after_step(self):
        # Step at 20: actuate@32 is the first applied grow at/after it.
        assert end_to_end_reaction(make_trace(), 20.0, "web") == 12.0

    def test_actuations_before_step_ignored(self):
        assert end_to_end_reaction(make_trace(), 16.0, "web") == 16.0

    def test_action_filter(self):
        trace = make_trace()
        assert end_to_end_reaction(trace, 0.0, "cache",
                                   action="reclaim") == 35.0
        assert end_to_end_reaction(trace, 0.0, "cache",
                                   action="grow") is None

    def test_none_when_never_reacted(self):
        assert end_to_end_reaction(make_trace(), 100.0, "web") is None
