"""Unit tests for cost accounting."""

import pytest

from repro.analysis.cost import (
    PriceSheet,
    app_cost,
    cluster_provisioned_cost,
)
from repro.cluster.resources import ResourceVector


class TestPriceSheet:
    def test_rate(self):
        prices = PriceSheet(cpu_hour=1.0, memory_gib_hour=0.1,
                            disk_bw_mbs_hour=0.01, net_bw_mbs_hour=0.001)
        alloc = ResourceVector(cpu=2, memory=10, disk_bw=100, net_bw=1000)
        assert prices.rate(alloc) == pytest.approx(2 + 1 + 1 + 1)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PriceSheet(cpu_hour=-1)

    def test_default_ordering_sane(self):
        prices = PriceSheet()
        # A core-hour costs more than a GiB-hour, which costs more than
        # a MB/s-hour of bandwidth.
        assert prices.cpu_hour > prices.memory_gib_hour
        assert prices.memory_gib_hour > prices.disk_bw_mbs_hour


class TestAppCost:
    def test_constant_allocation(self, engine, collector):
        # 2 cores held for one hour at $1/core-hour = $2.
        collector.record("app/svc/alloc/cpu", 2.0)
        engine.run_until(3600.0)
        report = app_cost(
            collector, "svc",
            prices=PriceSheet(cpu_hour=1.0, memory_gib_hour=0,
                              disk_bw_mbs_hour=0, net_bw_mbs_hour=0),
            start=0.0, end=3600.0,
        )
        assert report.total == pytest.approx(2.0)
        assert report.per_resource["cpu"] == pytest.approx(2.0)
        assert report.per_resource["memory"] == 0.0

    def test_allocation_change_mid_window(self, engine, collector):
        collector.record("app/svc/alloc/cpu", 4.0)
        engine.run_until(1800.0)
        collector.record("app/svc/alloc/cpu", 2.0)
        engine.run_until(3600.0)
        report = app_cost(
            collector, "svc",
            prices=PriceSheet(cpu_hour=1.0, memory_gib_hour=0,
                              disk_bw_mbs_hour=0, net_bw_mbs_hour=0),
            start=0.0, end=3600.0,
        )
        assert report.total == pytest.approx(3.0)  # (4×0.5h + 2×0.5h)

    def test_missing_series_is_zero(self, engine, collector):
        engine.run_until(100.0)
        report = app_cost(collector, "ghost", start=0.0, end=100.0)
        assert report.total == 0.0

    def test_invalid_window(self, engine, collector):
        with pytest.raises(ValueError):
            app_cost(collector, "svc", start=10.0, end=10.0)

    def test_default_end_is_now(self, engine, collector):
        collector.record("app/svc/alloc/cpu", 1.0)
        engine.run_until(7200.0)
        report = app_cost(collector, "svc")
        assert report.window == pytest.approx(7200.0)


class TestClusterCost:
    def test_provisioned_cost(self):
        cost = cluster_provisioned_cost(
            ResourceVector(cpu=10, memory=0, disk_bw=0, net_bw=0),
            7200.0,
            prices=PriceSheet(cpu_hour=0.5, memory_gib_hour=0,
                              disk_bw_mbs_hour=0, net_bw_mbs_hour=0),
        )
        assert cost == pytest.approx(10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            cluster_provisioned_cost(ResourceVector(cpu=1), -1)


def test_integration_cost_tracks_reclaim(engine, api, collector):
    """An adaptive run should bill less than its static twin."""
    from repro.platform.config import ClusterSpec, PlatformConfig
    from repro.platform.evolve import EvolvePlatform
    from repro.workloads.microservice import ServiceDemands
    from repro.workloads.plo import LatencyPLO
    from repro.workloads.traces import ConstantTrace

    def run(policy):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=3),
            config=PlatformConfig(seed=2),
            policy=policy,
        )
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(30),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=4, memory=8, disk_bw=200, net_bw=200),
            plo=LatencyPLO(0.1, window=30),
        )
        platform.run(3600.0)
        return app_cost(platform.collector, "svc").total

    static_bill = run("static")
    adaptive_bill = run("adaptive")
    assert adaptive_bill < static_bill / 2
