"""Unit tests for table formatting and series export."""

import pytest

from repro.analysis.report import format_table, series_to_rows
from repro.metrics.timeseries import TimeSeries


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(
            ["policy", "violations"],
            [["static", 0.42], ["adaptive", 0.01]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("policy")
        assert "adaptive" in lines[3]
        # All rows equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0.0001234]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345" in text or "1.23e4" in text
        assert "0.000123" in text

    def test_nan_rendered(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSeriesToRows:
    def test_resamples_at_step(self):
        ts = TimeSeries()
        for t in range(0, 100, 10):
            ts.append(float(t), float(t))
        rows = series_to_rows(ts, step=20.0, start=0.0, end=80.0)
        assert [t for t, _v in rows] == [0.0, 20.0, 40.0, 60.0, 80.0]
        assert all(v == t for t, v in rows)

    def test_skips_before_first_sample(self):
        ts = TimeSeries()
        ts.append(50.0, 1.0)
        rows = series_to_rows(ts, step=20.0, start=0.0, end=100.0)
        assert rows[0][0] >= 50.0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            series_to_rows(TimeSeries(), step=0.0, start=0.0, end=10.0)
