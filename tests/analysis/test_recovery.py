"""Unit tests for per-fault-episode recovery analysis."""

import pytest

from repro.analysis.recovery import (
    fault_recovery_report,
    reconvergence_time,
    summarize,
)
from repro.cluster.chaos import FaultLog


def put(collector, app, samples):
    series = collector.series(f"control/{app}/error")
    for t, value in samples:
        series.append(t, value)


class TestReconvergenceTime:
    def test_settles_after_consecutive_run(self, collector):
        put(collector, "svc", [
            (10.0, 1.0), (20.0, 0.8), (30.0, 0.1),
            (40.0, 0.05), (50.0, 0.0), (60.0, 0.0),
        ])
        # Run of three at t=30,40,50 → settled at 50, measured from 25.
        assert reconvergence_time(collector, "svc", 25.0) == pytest.approx(25.0)

    def test_overachieving_error_counts_as_settled(self, collector):
        """Negative error means the PLO is overachieved — that is
        converged, not a violation (the convention is one-sided)."""
        put(collector, "svc", [(10.0, -0.5), (20.0, -0.6), (30.0, -0.4)])
        assert reconvergence_time(collector, "svc", 5.0) == pytest.approx(25.0)

    def test_violation_resets_the_run(self, collector):
        put(collector, "svc", [
            (10.0, 0.0), (20.0, 0.0), (30.0, 2.0),
            (40.0, 0.0), (50.0, 0.0), (60.0, 0.0),
        ])
        assert reconvergence_time(collector, "svc", 0.0) == pytest.approx(60.0)

    def test_never_settles_returns_none(self, collector):
        put(collector, "svc", [(10.0, 1.0), (20.0, 2.0)])
        assert reconvergence_time(collector, "svc", 0.0) is None

    def test_absent_series_returns_none(self, collector):
        assert reconvergence_time(collector, "ghost", 0.0) is None

    def test_horizon_cuts_off_late_settling(self, collector):
        put(collector, "svc", [
            (100.0, 0.0), (110.0, 0.0), (120.0, 0.0),
        ])
        assert reconvergence_time(collector, "svc", 0.0, horizon=50.0) is None
        assert reconvergence_time(
            collector, "svc", 0.0, horizon=150.0
        ) == pytest.approx(120.0)

    def test_samples_before_start_ignored(self, collector):
        put(collector, "svc", [
            (10.0, 0.0), (20.0, 0.0), (30.0, 0.0), (40.0, 1.0),
            (50.0, 0.0), (60.0, 0.0), (70.0, 0.0),
        ])
        # The pre-start run at 10..30 must not count toward settling.
        assert reconvergence_time(collector, "svc", 35.0) == pytest.approx(35.0)

    def test_settle_validation(self, collector):
        with pytest.raises(ValueError):
            reconvergence_time(collector, "svc", 0.0, settle=0)


class TestReport:
    def make_log(self):
        log = FaultLog()
        crash = log.open("node-crash", "node-0", 100.0)
        log.close(crash, 160.0)
        log.record("scrape-drop", "*", 300.0, 330.0)
        log.open("node-crash", "node-1", 500.0)  # never healed
        return log

    def test_one_report_per_episode(self, collector):
        put(collector, "svc", [(t, 0.0) for t in range(110, 200, 10)])
        reports = fault_recovery_report(self.make_log(), collector, ["svc"])
        assert len(reports) == 3
        assert reports[0].mttr == pytest.approx(60.0)
        assert reports[0].reconvergence["svc"] == pytest.approx(30.0)
        assert reports[2].mttr is None  # still-active episode

    def test_kinds_filter(self, collector):
        reports = fault_recovery_report(
            self.make_log(), collector, ["svc"], kinds=["scrape-drop"],
        )
        assert [r.episode.kind for r in reports] == ["scrape-drop"]

    def test_worst_reconvergence_none_when_any_app_unsettled(self, collector):
        put(collector, "a", [(t, 0.0) for t in range(110, 150, 10)])
        put(collector, "b", [(t, 9.0) for t in range(110, 150, 10)])
        reports = fault_recovery_report(
            self.make_log(), collector, ["a", "b"], kinds=["node-crash"],
        )
        assert reports[0].reconvergence["a"] is not None
        assert reports[0].worst_reconvergence() is None

    def test_summarize_aggregates(self, collector):
        put(collector, "svc", [(t, 0.0) for t in range(110, 400, 10)])
        stats = summarize(
            fault_recovery_report(self.make_log(), collector, ["svc"])
        )
        assert stats.episodes == 3
        assert stats.healed == 2  # the open node-1 crash has no MTTR
        assert stats.mean_mttr == pytest.approx((60.0 + 30.0) / 2)
        assert stats.max_mttr == pytest.approx(60.0)
        # Episodes at 100 and 300 settle; the one at 500 never does.
        assert stats.unconverged == 1
        assert stats.max_reconvergence is not None

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats.episodes == 0
        assert stats.mean_mttr is None
        assert stats.unconverged == 0
