"""Unit tests for analysis statistics."""

import pytest

from repro.analysis.stats import (
    PLOMonitor,
    overshoot,
    settling_time,
    utilization_summary,
)
from repro.cluster.resources import ResourceVector
from repro.metrics.timeseries import TimeSeries
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace
from tests.conftest import make_spec


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


class TestPLOMonitor:
    def _deploy(self, engine, api, collector, *, cpu=0.2, rate=100.0):
        svc = Microservice(
            "svc", engine, api, trace=ConstantTrace(rate), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=20, net_bw=20),
        )
        svc.plo = LatencyPLO(0.05, window=20)
        svc.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        collector.register(svc)
        collector.start()
        return svc

    def test_tracks_violations(self, engine, api, collector):
        svc = self._deploy(engine, api, collector, cpu=0.2, rate=100.0)
        monitor = PLOMonitor(engine, collector, interval=5.0)
        tracker = monitor.track(svc)
        monitor.start()
        engine.run_until(120.0)
        assert tracker.observations > 10
        assert tracker.violation_fraction > 0.5  # starved service violates
        assert collector.has_series("plo/svc/ratio")
        assert collector.has_series("plo/svc/violated")

    def test_healthy_service_no_violations(self, engine, api, collector):
        svc = self._deploy(engine, api, collector, cpu=4.0, rate=50.0)
        monitor = PLOMonitor(engine, collector, interval=5.0)
        tracker = monitor.track(svc)
        # Skip the cold-start transient (pod startup reports timeouts).
        engine.run_until(60.0)
        monitor.start()
        engine.run_until(180.0)
        assert tracker.violation_fraction == 0.0

    def test_requires_plo(self, engine, api, collector):
        svc = Microservice(
            "nop", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=1, memory=1),
        )
        monitor = PLOMonitor(engine, collector)
        with pytest.raises(ValueError):
            monitor.track(svc)

    def test_duplicate_rejected(self, engine, api, collector):
        svc = self._deploy(engine, api, collector)
        monitor = PLOMonitor(engine, collector)
        monitor.track(svc)
        with pytest.raises(ValueError):
            monitor.track(svc)


class TestUtilizationSummary:
    def test_integrates_cluster_series(self, engine, api, collector):
        api.create_pod(make_spec("p0", cpu=12))  # quarter of 48 cpu
        api.bind_pod("p0", "node-0")
        collector.start()
        engine.run_until(100.0)
        summary = utilization_summary(collector, 0.0, 100.0)
        assert summary.mean_alloc["cpu"] == pytest.approx(0.25, abs=0.05)
        assert 0 <= summary.overall_usage <= summary.overall_alloc + 1e-9

    def test_invalid_window(self, engine, api, collector):
        with pytest.raises(ValueError):
            utilization_summary(collector, 10.0, 10.0)


class TestSettlingTime:
    def make_series(self, pairs):
        ts = TimeSeries()
        for t, v in pairs:
            ts.append(t, v)
        return ts

    def test_settles_and_holds(self):
        ts = self.make_series(
            [(0, 5.0), (10, 2.0), (20, 1.05), (30, 1.0), (80, 1.0)]
        )
        result = settling_time(ts, after=0.0, target=1.0, band=0.1, hold=30.0)
        assert result == pytest.approx(20.0)

    def test_excursion_resets_settling(self):
        ts = self.make_series(
            [(0, 1.0), (10, 1.0), (20, 5.0), (30, 1.0), (90, 1.0)]
        )
        result = settling_time(ts, after=0.0, target=1.0, band=0.1, hold=30.0)
        assert result == pytest.approx(30.0)

    def test_never_settles(self):
        ts = self.make_series([(0, 5.0), (50, 5.0), (100, 5.0)])
        assert settling_time(ts, after=0.0, target=1.0) is None

    def test_hold_too_short(self):
        ts = self.make_series([(0, 5.0), (10, 1.0), (15, 1.0)])
        assert settling_time(ts, after=0.0, target=1.0, hold=30.0) is None


class TestOvershoot:
    def test_peak_excursion(self):
        ts = TimeSeries()
        for t, v in [(0, 1.0), (10, 1.5), (20, 1.2)]:
            ts.append(t, v)
        assert overshoot(ts, after=0.0, target=1.0) == pytest.approx(0.5)

    def test_no_overshoot(self):
        ts = TimeSeries()
        ts.append(0, 0.5)
        assert overshoot(ts, after=0.0, target=1.0) == 0.0

    def test_window_bounds(self):
        ts = TimeSeries()
        for t, v in [(0, 2.0), (10, 1.0), (20, 3.0)]:
            ts.append(t, v)
        assert overshoot(ts, after=5.0, target=1.0, until=15.0) == 0.0
