"""Unit tests for the object store and placement."""

import pytest

from repro.storage.objectstore import ObjectStore, StorageError, StorageObject
from repro.storage.placement import DatasetPlacement, spread_blocks


class TestObjectStore:
    def test_bucket_lifecycle(self):
        store = ObjectStore()
        store.create_bucket("b")
        assert store.has_bucket("b")
        with pytest.raises(StorageError):
            store.create_bucket("b")

    def test_put_get_delete(self):
        store = ObjectStore()
        store.create_bucket("b")
        obj = store.put("b", "k", 10.0, {"node-0"})
        assert store.get("b", "k") is obj
        store.delete("b", "k")
        with pytest.raises(StorageError):
            store.get("b", "k")

    def test_put_unknown_bucket(self):
        with pytest.raises(StorageError):
            ObjectStore().put("ghost", "k", 1.0, set())

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StorageObject("b", "k", -1.0)

    def test_bucket_size(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, set())
        store.put("b", "k2", 5.0, set())
        assert store.bucket_size_mb("b") == 15.0

    def test_locality_fraction(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, {"node-0"})
        store.put("b", "k2", 30.0, {"node-1"})
        assert store.locality_fraction("b", "node-0") == pytest.approx(0.25)
        assert store.locality_fraction("b", "node-1") == pytest.approx(0.75)
        assert store.locality_fraction("b", "node-9") == 0.0

    def test_locality_of_empty_bucket(self):
        store = ObjectStore()
        store.create_bucket("b")
        assert store.locality_fraction("b", "node-0") == 0.0

    def test_replica_nodes(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k", 1.0, {"node-0", "node-2"})
        assert store.replica_nodes("b") == {"node-0", "node-2"}

    def test_invalid_remote_penalty(self):
        with pytest.raises(ValueError):
            ObjectStore(remote_penalty=0.0)


class TestSpreadBlocks:
    def test_even_spread(self):
        store = ObjectStore()
        nodes = [f"node-{i}" for i in range(4)]
        n = spread_blocks(store, "data", total_mb=400, block_mb=10, nodes=nodes)
        assert n == 40
        for node in nodes:
            assert store.locality_fraction("data", node) == pytest.approx(0.25)

    def test_skewed_placement(self):
        store = ObjectStore()
        nodes = [f"node-{i}" for i in range(4)]
        spread_blocks(store, "data", total_mb=400, block_mb=10, nodes=nodes, skew=0.8)
        assert store.locality_fraction("data", "node-0") > 0.75

    def test_replication(self):
        store = ObjectStore()
        nodes = ["a", "b", "c"]
        spread_blocks(
            store, "data", total_mb=30, block_mb=10, nodes=nodes, replication=2
        )
        for obj in store.list_objects("data"):
            assert len(obj.replicas) == 2

    def test_creates_bucket_if_missing(self):
        store = ObjectStore()
        spread_blocks(store, "new", total_mb=10, block_mb=10, nodes=["a"])
        assert store.has_bucket("new")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_mb": 0},
            {"block_mb": 0},
            {"nodes": []},
            {"skew": 1.0},
            {"replication": 0},
            {"replication": 5},
        ],
    )
    def test_invalid_params(self, kwargs):
        defaults = {"total_mb": 100, "block_mb": 10, "nodes": ["a", "b"]}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            spread_blocks(ObjectStore(), "d", **defaults)


class TestDatasetPlacement:
    def test_caches_locality(self):
        store = ObjectStore()
        spread_blocks(store, "d", total_mb=100, block_mb=10, nodes=["a", "b"])
        placement = DatasetPlacement(store, "d")
        first = placement.locality("a")
        store.put("d", "extra", 1000.0, {"b"})
        assert placement.locality("a") == first  # cached
        placement.invalidate()
        assert placement.locality("a") < first

    def test_best_nodes(self):
        store = ObjectStore()
        store.create_bucket("d")
        store.put("d", "k1", 80.0, {"a"})
        store.put("d", "k2", 20.0, {"b"})
        placement = DatasetPlacement(store, "d")
        assert placement.best_nodes(["a", "b", "c"], 2) == ["a", "b"]
