"""Unit tests for the object store and placement."""

import pytest

from repro.storage.objectstore import ObjectStore, StorageError, StorageObject
from repro.storage.placement import DatasetPlacement, spread_blocks


class TestObjectStore:
    def test_bucket_lifecycle(self):
        store = ObjectStore()
        store.create_bucket("b")
        assert store.has_bucket("b")
        with pytest.raises(StorageError):
            store.create_bucket("b")

    def test_put_get_delete(self):
        store = ObjectStore()
        store.create_bucket("b")
        obj = store.put("b", "k", 10.0, {"node-0"})
        assert store.get("b", "k") is obj
        store.delete("b", "k")
        with pytest.raises(StorageError):
            store.get("b", "k")

    def test_put_unknown_bucket(self):
        with pytest.raises(StorageError):
            ObjectStore().put("ghost", "k", 1.0, set())

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StorageObject("b", "k", -1.0)

    def test_bucket_size(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, set())
        store.put("b", "k2", 5.0, set())
        assert store.bucket_size_mb("b") == 15.0

    def test_locality_fraction(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, {"node-0"})
        store.put("b", "k2", 30.0, {"node-1"})
        assert store.locality_fraction("b", "node-0") == pytest.approx(0.25)
        assert store.locality_fraction("b", "node-1") == pytest.approx(0.75)
        assert store.locality_fraction("b", "node-9") == 0.0

    def test_locality_of_empty_bucket(self):
        store = ObjectStore()
        store.create_bucket("b")
        assert store.locality_fraction("b", "node-0") == 0.0

    def test_replica_nodes(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k", 1.0, {"node-0", "node-2"})
        assert store.replica_nodes("b") == {"node-0", "node-2"}

    def test_invalid_remote_penalty(self):
        with pytest.raises(ValueError):
            ObjectStore(remote_penalty=0.0)


class TestLiveness:
    """Node-liveness predicate plumbing (PR-7)."""

    @staticmethod
    def _store():
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, {"node-0"})
        store.put("b", "k2", 30.0, {"node-1"})
        return store

    def test_dark_node_serves_no_local_reads(self):
        store = self._store()
        dead = lambda n: n != "node-0"  # noqa: E731
        assert store.locality_fraction("b", "node-0", live=dead) == 0.0
        assert store.locality_fraction("b", "node-1", live=dead) == pytest.approx(0.75)

    def test_default_predicate_used_when_live_not_passed(self):
        store = self._store()
        store.node_liveness = lambda n: n != "node-0"
        # _UNSET falls back to the store-level predicate…
        assert store.locality_fraction("b", "node-0") == 0.0
        assert store.replica_nodes("b") == {"node-1"}
        # …while an explicit live=None restores the liveness-blind view.
        assert store.locality_fraction("b", "node-0", live=None) == pytest.approx(0.25)
        assert store.replica_nodes("b", live=None) == {"node-0", "node-1"}

    def test_live_replicas_on_object(self):
        store = self._store()
        obj = store.get("b", "k1")
        assert obj.live_replicas(None) == frozenset({"node-0"})
        assert obj.live_replicas(lambda n: False) == frozenset()


class TestReplicaMutation:
    """drop_node / add_replica / replication targets (PR-7)."""

    @staticmethod
    def _store():
        store = ObjectStore()
        store.create_bucket("b")
        store.put("b", "k1", 10.0, {"node-0", "node-1"})
        store.put("b", "k2", 20.0, {"node-0"})
        store.put("b", "k3", 5.0, {"node-2"})
        return store

    def test_target_replicas_defaults_to_initial_count(self):
        store = self._store()
        assert store.get("b", "k1").target == 2
        assert store.get("b", "k2").target == 1
        obj = store.put("b", "k4", 1.0, {"node-0"}, target_replicas=3)
        assert obj.target == 3

    def test_invalid_target_replicas(self):
        with pytest.raises(ValueError):
            StorageObject("b", "k", 1.0, target_replicas=0)

    def test_drop_node_returns_count_and_may_orphan(self):
        store = self._store()
        assert store.drop_node("node-0") == 2
        assert store.get("b", "k1").replicas == frozenset({"node-1"})
        # k2 lost its only copy: zero replicas, reported as lost.
        assert store.get("b", "k2").replicas == frozenset()
        assert [o.key for o in store.lost_objects()] == ["k2"]
        assert store.drop_node("node-9") == 0

    def test_add_replica_is_idempotent(self):
        store = self._store()
        epoch = store.epoch
        obj = store.add_replica("b", "k3", "node-0")
        assert obj.replicas == frozenset({"node-0", "node-2"})
        assert store.epoch == epoch + 1
        # Re-adding the same replica is a no-op — no epoch churn.
        store.add_replica("b", "k3", "node-0")
        assert store.epoch == epoch + 1

    def test_under_replicated_sorted_and_live_aware(self):
        store = self._store()
        store.drop_node("node-0")
        assert [o.key for o in store.under_replicated("b")] == ["k1", "k2"]
        # A liveness predicate surfaces shortfalls before any drop.
        fresh = self._store()
        dead = lambda n: n != "node-0"  # noqa: E731
        assert [o.key for o in fresh.under_replicated(live=dead)] == ["k1", "k2"]

    def test_nodes_with_data(self):
        store = self._store()
        assert store.nodes_with_data() == {"node-0", "node-1", "node-2"}
        store.drop_node("node-2")
        assert store.nodes_with_data() == {"node-0", "node-1"}

    def test_epoch_bumps_on_mutation(self):
        store = ObjectStore()
        store.create_bucket("b")
        assert store.epoch == 0
        store.put("b", "k", 1.0, {"node-0"})
        assert store.epoch == 1
        store.add_replica("b", "k", "node-1")
        assert store.epoch == 2
        store.drop_node("node-1")
        assert store.epoch == 3
        store.delete("b", "k")
        assert store.epoch == 4


class TestSpreadBlocks:
    def test_even_spread(self):
        store = ObjectStore()
        nodes = [f"node-{i}" for i in range(4)]
        n = spread_blocks(store, "data", total_mb=400, block_mb=10, nodes=nodes)
        assert n == 40
        for node in nodes:
            assert store.locality_fraction("data", node) == pytest.approx(0.25)

    def test_skewed_placement(self):
        store = ObjectStore()
        nodes = [f"node-{i}" for i in range(4)]
        spread_blocks(store, "data", total_mb=400, block_mb=10, nodes=nodes, skew=0.8)
        assert store.locality_fraction("data", "node-0") > 0.75

    def test_replication(self):
        store = ObjectStore()
        nodes = ["a", "b", "c"]
        spread_blocks(
            store, "data", total_mb=30, block_mb=10, nodes=nodes, replication=2
        )
        for obj in store.list_objects("data"):
            assert len(obj.replicas) == 2

    def test_creates_bucket_if_missing(self):
        store = ObjectStore()
        spread_blocks(store, "new", total_mb=10, block_mb=10, nodes=["a"])
        assert store.has_bucket("new")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_mb": 0},
            {"block_mb": 0},
            {"nodes": []},
            {"skew": 1.0},
            {"replication": 0},
            {"replication": 5},
        ],
    )
    def test_invalid_params(self, kwargs):
        defaults = {"total_mb": 100, "block_mb": 10, "nodes": ["a", "b"]}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            spread_blocks(ObjectStore(), "d", **defaults)


class TestDatasetPlacement:
    def test_caches_locality(self):
        store = ObjectStore()
        spread_blocks(store, "d", total_mb=100, block_mb=10, nodes=["a", "b"])
        placement = DatasetPlacement(store, "d")
        first = placement.locality("a")
        store.put("d", "extra", 1000.0, {"b"})
        assert placement.locality("a") == first  # cached
        placement.invalidate()
        assert placement.locality("a") < first

    def test_best_nodes(self):
        store = ObjectStore()
        store.create_bucket("d")
        store.put("d", "k1", 80.0, {"a"})
        store.put("d", "k2", 20.0, {"b"})
        placement = DatasetPlacement(store, "d")
        assert placement.best_nodes(["a", "b", "c"], 2) == ["a", "b"]
