"""Tests for the background storage repair service (PR-7)."""

import pytest

from repro.cluster.chaos import FailureInjector, FaultLog
from repro.dataplane import DataPlaneConfig
from repro.storage.objectstore import ObjectStore
from repro.storage.placement import spread_blocks
from repro.storage.repair import StorageRepairService


def make_service(engine, api, store, **cfg):
    config = DataPlaneConfig(enabled=True, **cfg)
    service = StorageRepairService(engine, store, api, config=config)
    service.start()
    return service


def seeded_store(replication=2):
    store = ObjectStore()
    spread_blocks(
        store, "data", total_mb=120, block_mb=10,
        nodes=["node-0", "node-1", "node-2"], replication=replication,
    )
    return store


class TestRepairLoop:
    def test_dark_node_dropped_and_rereplicated(self, engine, cluster, api):
        store = seeded_store()
        service = make_service(engine, api, store)
        FailureInjector(cluster).fail_node("node-0")
        engine.run_until(16.0)  # one scan past the default 15 s interval
        assert service.dropped_replicas > 0
        assert service.repaired_objects == service.dropped_replicas
        assert service.backlog() == 0
        # Every object is back at target using only live replicas.
        assert store.under_replicated(live=service.node_live) == []
        # Repair ledger: bytes landed == bytes moved.
        assert service.repaired_mb == pytest.approx(service.repair_traffic_mb)
        assert service.repaired_mb == pytest.approx(10.0 * service.repaired_objects)

    def test_no_failure_means_no_repair_traffic(self, engine, api):
        store = seeded_store()
        service = make_service(engine, api, store)
        engine.run_until(50.0)
        assert service.scans == 3
        assert service.repair_traffic_mb == 0.0
        assert service.dropped_replicas == 0

    def test_bandwidth_budget_spreads_repair_over_scans(self, engine, cluster, api):
        store = seeded_store()
        # 1 MB/s × 15 s = 15 MB per scan → at most 2 of the 10 MB blocks
        # (the second overshoots and borrows from the next scan's budget).
        service = make_service(engine, api, store, repair_bandwidth_mbps=1.0)
        FailureInjector(cluster).fail_node("node-0")
        engine.run_until(16.0)
        assert 0 < service.repaired_objects <= 2
        assert service.backlog() > 0
        engine.run_until(200.0)
        assert service.backlog() == 0
        assert store.under_replicated(live=service.node_live) == []
        assert service.repaired_mb == pytest.approx(service.repair_traffic_mb)

    def test_lost_objects_are_not_repairable(self, engine, cluster, api):
        store = seeded_store(replication=1)
        service = make_service(engine, api, store)
        FailureInjector(cluster).fail_node("node-0")
        engine.run_until(46.0)
        # Blocks whose only copy was on node-0 have no source to copy from.
        lost = store.lost_objects()
        assert lost
        assert service.backlog() == 0  # not re-queued forever
        assert all(not o.replicas for o in lost)
        # Lost blocks still count as under-replicated (the data is gone,
        # not forgotten); nothing with a surviving copy is left short.
        short = store.under_replicated(live=service.node_live)
        assert short == lost

    def test_unplaceable_defers_until_node_recovers(self, engine, cluster, api):
        store = ObjectStore()
        store.create_bucket("b")
        # Already on both surviving nodes; target 3 needs node-0 back.
        store.put("b", "k", 10.0, {"node-1", "node-2"}, target_replicas=3)
        injector = FailureInjector(cluster)
        injector.fail_node("node-0")
        service = make_service(engine, api, store)
        engine.run_until(16.0)
        assert service.unplaceable > 0
        assert service.repaired_objects == 0
        assert service.backlog() == 1
        injector.recover_node("node-0")
        engine.run_until(46.0)
        assert service.repaired_objects == 1
        assert store.get("b", "k").replicas == frozenset(
            {"node-0", "node-1", "node-2"}
        )
        assert service.backlog() == 0

    def test_replica_loss_recorded_in_fault_log(self, engine, cluster, api):
        store = seeded_store()
        log = FaultLog()
        config = DataPlaneConfig(enabled=True)
        service = StorageRepairService(engine, store, api, config=config, log=log)
        service.start()
        FailureInjector(cluster).fail_node("node-1")
        engine.run_until(16.0)
        records = [e for e in log.episodes if e.kind == "storage-replica-loss"]
        assert len(records) == 1
        assert records[0].target == "node-1"
        assert service.dropped_replicas > 0

    def test_stop_cancels_future_scans(self, engine, api):
        store = seeded_store()
        service = make_service(engine, api, store)
        engine.run_until(16.0)
        assert service.scans == 1
        service.stop()
        engine.run_until(100.0)
        assert service.scans == 1
        service.start()  # restart re-arms the periodic scan
        engine.run_until(116.0)
        assert service.scans == 2

    def test_sample_metrics_keys(self, engine, cluster, api):
        store = seeded_store()
        service = make_service(engine, api, store)
        FailureInjector(cluster).fail_node("node-2")
        engine.run_until(16.0)
        metrics = service.sample_metrics()
        assert metrics["repair_scans"] == 1.0
        assert metrics["repair_backlog"] == 0.0
        assert metrics["repaired_objects"] > 0
        assert metrics["repair_traffic_mb"] > 0
        assert metrics["replicas_dropped"] > 0
