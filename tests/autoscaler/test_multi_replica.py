"""Autoscaler behaviour with multiple replicas (aggregate-metric math)."""

import pytest

from repro.autoscaler.hpa import HorizontalPodAutoscaler
from repro.autoscaler.vpa import VerticalPodAutoscaler
from repro.cluster.resources import ResourceVector
from repro.control.multiresource import AllocationBounds
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def deploy(engine, api, collector, *, rate, replicas, cpu=1.0):
    svc = Microservice(
        "svc", engine, api, trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=2, disk_bw=50,
                                          net_bw=50),
        initial_replicas=replicas,
    )
    svc.start()
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)])
    collector.register(svc)
    collector.start()
    engine.run_until(6.0)
    return svc


def test_vpa_recommends_per_replica(engine, api, collector):
    # 120 rps over 3 replicas = 40 rps each = 0.4 cores used per replica.
    svc = deploy(engine, api, collector, rate=120, replicas=3, cpu=2.0)
    vpa = VerticalPodAutoscaler(
        engine, collector, bounds=BOUNDS, margin=1.0, history_window=120.0
    )
    vpa.attach(svc)
    engine.run_until(150.0)
    rec = vpa.recommend(svc)
    assert rec.cpu == pytest.approx(0.4, rel=0.15)


def test_hpa_utilization_is_aggregate(engine, api, collector):
    # 3 replicas × 1 core, 240 rps total ⇒ 2.4/3 = 80% aggregate.
    svc = deploy(engine, api, collector, rate=240, replicas=3)
    hpa = HorizontalPodAutoscaler(engine, collector, target_utilization=0.8,
                                  tolerance=0.1)
    hpa.attach(svc)
    engine.run_until(60.0)
    utilization = hpa._observed_utilization(svc)
    assert utilization == pytest.approx(0.8, abs=0.08)


def test_hpa_desired_scales_with_ratio(engine, api, collector):
    svc = deploy(engine, api, collector, rate=240, replicas=2)
    # Utilization 2.4/2 → capped near 100%; target 0.4 ⇒ desired ~5-6.
    hpa = HorizontalPodAutoscaler(engine, collector, target_utilization=0.4,
                                  interval=15.0, max_replicas=10)
    hpa.attach(svc)
    hpa.start()
    engine.run_until(31.0)
    assert svc.replica_count >= 4
