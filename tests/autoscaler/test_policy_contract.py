"""Shared contract tests for every registered AutoscalerPolicy.

Parametrized over the live registry, so a policy added in a later PR is
automatically held to the same interface, determinism, and actuation
discipline as the built-ins.
"""

import pytest

from repro.autoscaler.registry import (
    PolicyInterfaceError,
    UnknownPolicyError,
    build_policy,
    register_policy,
    registered_policies,
)
from repro.autoscaler.registry import _REGISTRY
from repro.cluster.events import PodResized
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import POLICIES, EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace

DEMANDS = ServiceDemands(cpu_seconds=0.008, base_latency=0.01)
ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20)

#: Attributes the AutoscalerPolicy protocol demands.
REQUIRED = ("policy_name", "attach", "detach", "start", "stop")


def build(policy: str, seed: int = 11) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=seed),
        policy=policy,
    )
    platform.deploy_microservice(
        "svc",
        trace=DiurnalTrace(base=100, amplitude=60, period=300),
        demands=DEMANDS,
        allocation=ALLOC,
        plo=LatencyPLO(0.05, window=30),
        managed=policy != "static",
    )
    return platform


class TestRegistry:
    def test_builtins_registered(self):
        assert registered_policies() == ("static", "hpa", "vpa", "adaptive")
        assert POLICIES == registered_policies()

    def test_unknown_policy_typed_error_lists_registered(self):
        with pytest.raises(UnknownPolicyError) as info:
            EvolvePlatform(
                cluster_spec=ClusterSpec(node_count=3), policy="mystery"
            )
        message = str(info.value)
        for name in registered_policies():
            assert repr(name) in message
        # Pre-registry callers caught ValueError; that contract holds.
        assert isinstance(info.value, ValueError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("static")(lambda ctx: None)

    def test_interface_validation(self):
        @register_policy("broken-test-policy")
        def _build(ctx, **kwargs):
            return object()

        try:
            platform = EvolvePlatform(cluster_spec=ClusterSpec(node_count=3))
            ctx_builder = platform._build_policy
            with pytest.raises(PolicyInterfaceError) as info:
                ctx_builder("broken-test-policy", {})
            assert "attach" in str(info.value)
            assert isinstance(info.value, TypeError)
        finally:
            del _REGISTRY["broken-test-policy"]

    def test_build_policy_unknown_name(self):
        platform = EvolvePlatform(cluster_spec=ClusterSpec(node_count=3))
        with pytest.raises(UnknownPolicyError):
            platform._build_policy("nope", {})


@pytest.mark.parametrize("policy", registered_policies())
class TestPolicyContract:
    def test_interface_conformance(self, policy):
        platform = build(policy)
        for attr in REQUIRED:
            assert hasattr(platform.policy, attr), attr
        assert isinstance(platform.policy.policy_name, str)
        assert platform.policy.policy_name

    def test_detach_is_idempotent(self, policy):
        platform = build(policy)
        app = platform.apps["svc"]
        platform.policy.detach(app)
        platform.policy.detach(app)  # second call must not raise

    def test_stop_before_start_is_safe(self, policy):
        platform = build(policy)
        platform.policy.stop()

    def test_deterministic_under_fixed_seed(self, policy):
        def fingerprint():
            platform = build(policy, seed=23)
            events: list[tuple] = []
            platform.api.watch(
                PodResized,
                lambda e: events.append(
                    (e.time, e.pod_name, e.new_allocation.cpu)
                ),
            )
            platform.run(300.0)
            return (
                platform.engine.events_executed,
                events,
                platform.apps["svc"].replica_count,
            )

        assert fingerprint() == fingerprint()

    def test_actuation_only_through_application_verbs(self, policy):
        """Every pod resize / replica change traces back to the two
        actuation verbs; a policy mutating cluster state behind the
        API would fire events without a recorded actuation call."""
        platform = build(policy)
        app = platform.apps["svc"]
        calls = {"resize": 0, "scale": 0}
        orig_resize = app.set_target_allocation
        orig_scale = app.scale_to

        def set_target_allocation(allocation):
            calls["resize"] += 1
            return orig_resize(allocation)

        def scale_to(replicas):
            calls["scale"] += 1
            return orig_scale(replicas)

        app.set_target_allocation = set_target_allocation
        app.scale_to = scale_to
        initial_replicas = app.replica_count
        resizes: list = []
        platform.api.watch(PodResized, resizes.append)
        platform.run(300.0)
        if calls["resize"] == 0:
            assert resizes == []
        if calls["scale"] == 0:
            assert app.replica_count == initial_replicas
