"""Unit tests for the adaptive autoscaler and horizontal escape valve."""

import pytest

from repro.autoscaler.adaptive import AdaptiveAutoscaler, HorizontalEscapePolicy
from repro.autoscaler.static import StaticPolicy
from repro.cluster.resources import ResourceVector
from repro.control.multiresource import (
    AllocationBounds,
    ControlDecision,
    MultiResourceController,
)
from repro.control.pid import PIDGains
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def controller():
    return MultiResourceController(PIDGains(kp=1.0), BOUNDS)


def decision(action, error, weights=None, alloc=None):
    return ControlDecision(
        action=action,
        new_allocation=alloc or ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
        error=error,
        output=error,
        gain_scale=1.0,
        weights=weights or {},
    )


class FakeApp:
    def __init__(self, replicas=1, allocation=None):
        self.name = "fake"
        self.replica_count = replicas
        self._allocation = allocation or ResourceVector(
            cpu=1, memory=1, disk_bw=20, net_bw=20
        )

    def current_allocation(self):
        return self._allocation


class TestEscapePolicy:
    def test_scale_out_when_railed(self, engine):
        policy = HorizontalEscapePolicy(engine, cooldown=0.0)
        app = FakeApp(replicas=1, allocation=BOUNDS.maximum)
        d = decision("hold", error=0.5, weights={"cpu": 1.0})
        assert policy.adjust(app, d, controller()) == 2
        assert policy.scale_outs == 1

    def test_no_scale_out_with_vertical_headroom(self, engine):
        policy = HorizontalEscapePolicy(engine, cooldown=0.0)
        app = FakeApp(replicas=1)  # allocation well below ceiling
        d = decision("grow", error=0.5, weights={"cpu": 1.0})
        assert policy.adjust(app, d, controller()) == 1

    def test_no_scale_out_on_small_error(self, engine):
        policy = HorizontalEscapePolicy(engine, scale_out_error=0.3, cooldown=0.0)
        app = FakeApp(replicas=1, allocation=BOUNDS.maximum)
        d = decision("hold", error=0.1, weights={"cpu": 1.0})
        assert policy.adjust(app, d, controller()) == 1

    def test_scale_in_near_floor(self, engine):
        policy = HorizontalEscapePolicy(engine, cooldown=0.0)
        app = FakeApp(replicas=3, allocation=BOUNDS.minimum * 1.1)
        d = decision("hold", error=-0.6)
        assert policy.adjust(app, d, controller()) == 2
        assert policy.scale_ins == 1

    def test_no_scale_in_below_min_replicas(self, engine):
        policy = HorizontalEscapePolicy(engine, min_replicas=2, cooldown=0.0)
        app = FakeApp(replicas=2, allocation=BOUNDS.minimum)
        d = decision("hold", error=-0.9)
        assert policy.adjust(app, d, controller()) == 2

    def test_max_replicas_cap(self, engine):
        policy = HorizontalEscapePolicy(engine, max_replicas=2, cooldown=0.0)
        app = FakeApp(replicas=2, allocation=BOUNDS.maximum)
        d = decision("hold", error=0.9, weights={"cpu": 1.0})
        assert policy.adjust(app, d, controller()) == 2

    def test_cooldown_blocks_consecutive_changes(self, engine):
        policy = HorizontalEscapePolicy(engine, cooldown=60.0)
        app = FakeApp(replicas=1, allocation=BOUNDS.maximum)
        d = decision("hold", error=0.9, weights={"cpu": 1.0})
        assert policy.adjust(app, d, controller()) == 2
        app.replica_count = 2
        assert policy.adjust(app, d, controller()) == 2  # cooling down
        engine.run_until(61.0)
        assert policy.adjust(app, d, controller()) == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_replicas": 0},
            {"min_replicas": 5, "max_replicas": 1},
            {"scale_out_error": -0.1},
            {"scale_in_error": 0.1},
        ],
    )
    def test_invalid_params(self, engine, kwargs):
        with pytest.raises(ValueError):
            HorizontalEscapePolicy(engine, **kwargs)


class TestAdaptiveAutoscaler:
    def _deploy(self, engine, api, collector, *, rate, cpu):
        svc = Microservice(
            "svc", engine, api, trace=ConstantTrace(rate), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=20, net_bw=20),
        )
        svc.plo = LatencyPLO(0.05, window=20)
        svc.start()
        collector.register(svc)
        collector.start()
        autoscaler = AdaptiveAutoscaler(engine, collector, bounds=BOUNDS)
        autoscaler.attach(svc)
        autoscaler.start()
        engine.every(
            1.0,
            lambda: [
                api.bind_pod(p.name, "node-0") for p in api.pending_pods()
            ],
        )
        return svc, autoscaler

    def test_end_to_end_escape_to_horizontal(self, engine, api, collector):
        """Load needs ~3 cores but the ceiling is 2: vertical rails out and
        the escape valve must add replicas."""
        svc, autoscaler = self._deploy(engine, api, collector, rate=300.0, cpu=0.5)
        engine.run_until(900.0)
        assert svc.replica_count >= 2
        assert autoscaler.escape.scale_outs >= 1
        assert svc.current_latency < 0.1

    def test_ablation_switches_propagate(self, engine, api, collector):
        autoscaler = AdaptiveAutoscaler(
            engine, collector, bounds=BOUNDS, adaptive=False, dimensions=("cpu",),
        )
        svc = Microservice(
            "svc", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=1, memory=1),
        )
        svc.plo = LatencyPLO(0.05)
        ctrl = autoscaler.attach(svc)
        assert ctrl.adaptive is False
        assert ctrl.dimensions == ("cpu",)

    def test_static_policy_does_nothing(self, engine, api, collector):
        svc = Microservice(
            "svc", engine, api, trace=ConstantTrace(500), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=0.2, memory=1, disk_bw=20, net_bw=20),
        )
        svc.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        policy = StaticPolicy(engine, collector)
        policy.attach(svc)
        policy.start()
        engine.run_until(120.0)
        assert svc.current_allocation().cpu == 0.2
        assert svc.replica_count == 1
