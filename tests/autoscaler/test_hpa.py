"""Unit tests for the HPA baseline."""

import pytest

from repro.autoscaler.hpa import HorizontalPodAutoscaler
from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace, StepTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=50, net_bw=50)


def deploy(engine, api, collector, trace, replicas=1):
    svc = Microservice(
        "svc", engine, api, trace=trace, demands=DEMANDS,
        initial_allocation=ALLOC, initial_replicas=replicas,
    )
    svc.start()
    _bind(engine, api)
    collector.register(svc)
    collector.start()
    return svc


def _bind(engine, api):
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)])


def autobind(engine, api, until):
    """Keep binding pods that appear (stand-in scheduler)."""
    handle = engine.every(1.0, lambda: _bind(engine, api))
    engine.run_until(until)
    handle.cancel()


def test_scales_out_under_high_utilization(engine, api, collector):
    # 1 core serves 100 rps; offered 90 rps ⇒ ~90% utilization > 60% target.
    svc = deploy(engine, api, collector, ConstantTrace(90))
    hpa = HorizontalPodAutoscaler(
        engine, collector, target_utilization=0.6, interval=15.0
    )
    hpa.attach(svc)
    hpa.start()
    autobind(engine, api, 300.0)
    assert svc.replica_count >= 2


def test_within_tolerance_no_action(engine, api, collector):
    # 60 rps on 1 core = 60% utilization = target exactly.
    svc = deploy(engine, api, collector, ConstantTrace(60))
    hpa = HorizontalPodAutoscaler(
        engine, collector, target_utilization=0.6, tolerance=0.15
    )
    hpa.attach(svc)
    hpa.start()
    autobind(engine, api, 300.0)
    assert svc.replica_count == 1


def test_scale_down_waits_for_stabilization(engine, api, collector):
    trace = StepTrace([(0, 150), (100, 20)])
    svc = deploy(engine, api, collector, trace, replicas=2)
    hpa = HorizontalPodAutoscaler(
        engine, collector, target_utilization=0.6, interval=15.0,
        scale_down_stabilization=120.0,
    )
    hpa.attach(svc)
    hpa.start()
    autobind(engine, api, 150.0)
    replicas_at_drop = svc.replica_count
    assert replicas_at_drop >= 2
    # Before the stabilization window elapses, no scale-down.
    autobind(engine, api, 180.0)
    assert svc.replica_count == replicas_at_drop
    autobind(engine, api, 600.0)
    assert svc.replica_count < replicas_at_drop


def test_respects_max_replicas(engine, api, collector):
    svc = deploy(engine, api, collector, ConstantTrace(1000))
    hpa = HorizontalPodAutoscaler(
        engine, collector, target_utilization=0.6, max_replicas=3, interval=15.0
    )
    hpa.attach(svc)
    hpa.start()
    autobind(engine, api, 600.0)
    assert svc.replica_count <= 3


def test_no_metrics_no_action(engine, api, collector):
    svc = Microservice(
        "svc", engine, api, trace=ConstantTrace(10), demands=DEMANDS,
        initial_allocation=ALLOC,
    )
    svc.start()
    hpa = HorizontalPodAutoscaler(engine, collector)
    hpa.attach(svc)
    hpa.reconcile(svc)  # collector has no series yet
    assert svc.replica_count == 1


def test_attach_twice_rejected(engine, api, collector):
    svc = Microservice(
        "svc", engine, api, trace=ConstantTrace(10), demands=DEMANDS,
        initial_allocation=ALLOC,
    )
    hpa = HorizontalPodAutoscaler(engine, collector)
    hpa.attach(svc)
    with pytest.raises(ValueError):
        hpa.attach(svc)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"target_utilization": 0.0},
        {"target_utilization": 1.0},
        {"tolerance": -0.1},
        {"min_replicas": 0},
        {"min_replicas": 5, "max_replicas": 2},
    ],
)
def test_invalid_params(engine, collector, kwargs):
    with pytest.raises(ValueError):
        HorizontalPodAutoscaler(engine, collector, **kwargs)
