"""Unit tests for the VPA baseline."""

import pytest

from repro.autoscaler.vpa import VerticalPodAutoscaler
from repro.cluster.resources import ResourceVector
from repro.control.multiresource import AllocationBounds
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def deploy(engine, api, collector, *, rate=50.0, cpu=4.0):
    svc = Microservice(
        "svc", engine, api, trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=4, disk_bw=100, net_bw=100),
        initial_replicas=1,
    )
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    collector.start()
    return svc


def test_recommendation_tracks_usage_percentile(engine, api, collector):
    svc = deploy(engine, api, collector, rate=50.0, cpu=4.0)
    vpa = VerticalPodAutoscaler(
        engine, collector, bounds=BOUNDS, margin=1.2, history_window=120.0
    )
    vpa.attach(svc)
    engine.run_until(120.0)
    rec = vpa.recommend(svc)
    # 50 rps × 0.01 cpu-s = 0.5 cores used; rec ≈ 0.5 × 1.2.
    assert rec.cpu == pytest.approx(0.6, rel=0.15)


def test_reconcile_shrinks_overprovisioned(engine, api, collector):
    svc = deploy(engine, api, collector, rate=50.0, cpu=4.0)
    vpa = VerticalPodAutoscaler(
        engine, collector, bounds=BOUNDS, interval=60.0, history_window=120.0
    )
    vpa.attach(svc)
    vpa.start()
    engine.run_until(600.0)
    assert svc.current_allocation().cpu < 1.5
    assert vpa.resizes >= 1


def test_recommendation_clamped_to_bounds(engine, api, collector):
    svc = deploy(engine, api, collector, rate=1.0, cpu=4.0)
    vpa = VerticalPodAutoscaler(engine, collector, bounds=BOUNDS,
                                history_window=120.0)
    vpa.attach(svc)
    engine.run_until(120.0)
    rec = vpa.recommend(svc)
    assert BOUNDS.minimum.fits_within(rec)
    assert rec.fits_within(BOUNDS.maximum)


def test_no_history_no_recommendation(engine, api, collector):
    svc = Microservice(
        "svc", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=1, memory=1),
    )
    vpa = VerticalPodAutoscaler(engine, collector, bounds=BOUNDS)
    assert vpa.recommend(svc) is None
    vpa.reconcile(svc)  # no crash, no change


def test_small_changes_suppressed(engine, api, collector):
    svc = deploy(engine, api, collector, rate=50.0, cpu=4.0)
    vpa = VerticalPodAutoscaler(
        engine, collector, bounds=BOUNDS, interval=60.0,
        history_window=120.0, change_threshold=100.0,  # everything suppressed
    )
    vpa.attach(svc)
    vpa.start()
    engine.run_until(600.0)
    assert vpa.resizes == 0
    assert svc.current_allocation().cpu == 4.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"percentile": 0},
        {"percentile": 150},
        {"margin": 0.9},
        {"change_threshold": -1},
    ],
)
def test_invalid_params(engine, collector, kwargs):
    with pytest.raises(ValueError):
        VerticalPodAutoscaler(engine, collector, bounds=BOUNDS, **kwargs)
