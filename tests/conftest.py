"""Shared fixtures: a small simulated cluster with metrics plumbing."""

from __future__ import annotations

import pytest

from repro.cluster.api import ClusterAPI
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.node import Node
from repro.cluster.pod import PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine


NODE_CAPACITY = ResourceVector(cpu=16, memory=64, disk_bw=500, net_bw=1250)


@pytest.fixture
def engine() -> Engine:
    return Engine()


def make_cluster(
    engine: Engine,
    *,
    nodes: int = 3,
    capacity: ResourceVector = NODE_CAPACITY,
    startup_delay: float = 5.0,
    resize_delay: float = 1.0,
) -> Cluster:
    return Cluster(
        engine,
        [Node(f"node-{i}", capacity) for i in range(nodes)],
        config=ClusterConfig(startup_delay=startup_delay, resize_delay=resize_delay),
    )


@pytest.fixture
def cluster(engine: Engine) -> Cluster:
    return make_cluster(engine)


@pytest.fixture
def api(cluster: Cluster) -> ClusterAPI:
    return ClusterAPI(cluster)


@pytest.fixture
def collector(engine: Engine, api: ClusterAPI) -> MetricsCollector:
    return MetricsCollector(engine, api, scrape_interval=5.0)


def make_spec(
    name: str = "pod-0",
    *,
    app: str = "app",
    cpu: float = 1.0,
    memory: float = 1.0,
    disk_bw: float = 10.0,
    net_bw: float = 10.0,
    workload_class: WorkloadClass = WorkloadClass.MICROSERVICE,
    gang_id: str | None = None,
    priority: int = 0,
) -> PodSpec:
    return PodSpec(
        name=name,
        app=app,
        workload_class=workload_class,
        requests=ResourceVector(cpu, memory, disk_bw, net_bw),
        gang_id=gang_id,
        priority=priority,
    )
