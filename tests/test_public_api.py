"""Public-API surface checks: exports exist and are importable.

A downstream user's first contact is ``from repro.X import Y``; this
test pins the advertised surface so refactors cannot silently drop it.
"""

import importlib

import pytest


PUBLIC_SURFACE = {
    "repro": ["EvolvePlatform", "ResourceVector", "ClusterSpec",
              "PlatformConfig", "ExperimentResult", "RESOURCES",
              "__version__"],
    "repro.sim": ["Engine", "RngRegistry", "SimulationError", "Watchdog"],
    "repro.cluster": ["Cluster", "ClusterAPI", "Node", "Pod", "PodSpec",
                      "PodPhase", "WorkloadClass", "ResourceVector",
                      "FailureInjector", "ChaosMonkey", "QuotaManager",
                      "DegradationInjector", "ActuationFaultInjector",
                      "ActuationError", "FaultLog", "FaultEpisode",
                      "NodeCrashDomain", "NodeDegradationDomain",
                      "PartitionError", "Lease", "ScopedClusterAPI",
                      "PodNotFound", "NodeNotFound", "PartitionInjector",
                      "ControllerCrashDomain", "PartitionDomain",
                      "ExecutorKillDomain", "StragglerDomain",
                      "DataLossDomain", "LeaderElected", "LeaderDeposed"],
    "repro.metrics": ["TimeSeries", "MetricsCollector", "MetricsSource",
                      "MetricsFaultInjector"],
    "repro.workloads": ["Application", "Microservice", "ServiceDemands",
                        "BigDataJob", "Stage", "HPCJob", "StreamJob",
                        "Operator", "LatencyPLO",
                        "ThroughputPLO", "DeadlinePLO", "ViolationTracker",
                        "ConstantTrace", "DiurnalTrace", "BurstyTrace",
                        "FlashCrowdTrace", "NoisyTrace", "OUTrace",
                        "ReplayTrace", "CompositeTrace", "StepTrace",
                        "RampTrace", "ScaledTrace"],
    "repro.control": ["PIDController", "PIDGains", "AdaptiveGainTuner",
                      "BottleneckEstimator", "MultiResourceController",
                      "AllocationBounds", "ControlDecision",
                      "ControlLoopManager", "ResilienceConfig",
                      "FeedforwardScaler", "ControllerStateStore",
                      "ReplicatedControlPlane", "FailoverEvent",
                      "StateSnapshot", "WalRecord"],
    "repro.autoscaler": ["StaticPolicy", "HorizontalPodAutoscaler",
                         "VerticalPodAutoscaler", "AdaptiveAutoscaler",
                         "HorizontalEscapePolicy"],
    "repro.scheduler": ["KubeScheduler", "ConvergedScheduler",
                        "SiloedScheduler", "GangAdmission",
                        "PreemptionPlan", "plan_gang"],
    "repro.storage": ["ObjectStore", "StorageObject", "DatasetPlacement",
                      "spread_blocks", "StorageRepairService"],
    "repro.platform": ["EvolvePlatform", "ClusterSpec", "PlatformConfig",
                       "build_nodes", "DataPlaneConfig"],
    "repro.analysis": ["PLOMonitor", "utilization_summary", "settling_time",
                       "recovery_time", "overshoot", "format_table",
                       "PriceSheet", "app_cost", "PowerModel",
                       "cluster_energy", "EpisodeRecovery", "RecoveryStats",
                       "fault_recovery_report", "reconvergence_time",
                       "summarize", "FailoverStats", "failover_stats",
                       "series_divergence", "actuations", "critical_path",
                       "end_to_end_reaction", "latency_quantiles",
                       "reaction_latencies", "triggering_scrape"],
    "repro.obs": ["Telemetry", "Tracer", "Trace", "Span",
                  "DecisionProvenance", "MetricsRegistry", "Counter",
                  "Gauge", "Histogram", "NAME_PATTERN", "lint_names",
                  "to_chrome_trace", "write_chrome_trace",
                  "write_trace_jsonl"],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name for name in PUBLIC_SURFACE[module_name]
        if not hasattr(module, name)
    ]
    assert not missing, f"{module_name} lost exports: {missing}"


def test_all_lists_are_accurate():
    for module_name in PUBLIC_SURFACE:
        module = importlib.import_module(module_name)
        declared = getattr(module, "__all__", None)
        if declared is None:
            continue
        missing = [name for name in declared if not hasattr(module, name)]
        assert not missing, f"{module_name}.__all__ lies: {missing}"


def test_cli_module_importable():
    from repro import cli
    assert callable(cli.main)
