"""Unit tests for preemption planning and the preempting scheduler."""

from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.scheduler.converged import ConvergedScheduler
from repro.scheduler.preemption import (
    plan_cheapest_single,
    plan_gang,
    plan_single,
)
from tests.conftest import make_spec


CAP = ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=500)


def pod(name, cpu, priority, gang=None):
    return Pod(
        make_spec(name, cpu=cpu, priority=priority, gang_id=gang),
        created_at=0.0,
    )


def loaded_node(name="n0", residents=((2.0, 5), (3.0, 5))):
    node = Node(name, CAP)
    for i, (cpu, prio) in enumerate(residents):
        node.bind(pod(f"{name}-res{i}", cpu, prio))
    return node


class TestPlanSingle:
    def test_no_eviction_when_it_fits(self):
        node = loaded_node()
        plan = plan_single(node, pod("new", 2.0, 10))
        assert plan is not None
        assert plan.victims == []

    def test_evicts_lowest_priority_first(self):
        node = Node("n", ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=500))
        low = pod("low", 3.0, 1)
        mid = pod("mid", 3.0, 5)
        node.bind(mid)
        node.bind(low)
        plan = plan_single(node, pod("new", 4.0, 10))
        assert [v.name for v in plan.victims] == ["low"]

    def test_never_evicts_equal_or_higher_priority(self):
        node = Node("n", ResourceVector(cpu=4, memory=32, disk_bw=200, net_bw=500))
        node.bind(pod("peer", 4.0, 10))
        assert plan_single(node, pod("new", 2.0, 10)) is None

    def test_insufficient_even_with_evictions(self):
        node = loaded_node(residents=((2.0, 1),))
        assert plan_single(node, pod("huge", 100.0, 10)) is None

    def test_cheapest_across_nodes(self):
        cheap = Node("cheap", CAP)
        cheap.bind(pod("one", 7.0, 1))
        pricey = Node("pricey", CAP)
        for i in range(4):
            pricey.bind(pod(f"small-{i}", 2.0, 1))
        plan = plan_cheapest_single([pricey, cheap], pod("new", 6.0, 10))
        assert [v.name for v in plan.victims] == ["one"]


class TestPlanGang:
    def nodes(self, n=2):
        return [Node(f"n{i}", CAP) for i in range(n)]

    def test_gang_fits_without_eviction(self):
        plan = plan_gang(self.nodes(), [pod(f"r{i}", 4.0, 20, "g") for i in range(4)])
        assert plan is not None
        assert plan.victims == []
        assert len(plan.assignment) == 4

    def test_gang_evicts_batch_to_fit(self):
        nodes = self.nodes()
        for node in nodes:
            node.bind(pod(f"{node.name}-batch", 6.0, 5))
        members = [pod(f"r{i}", 4.0, 20, "g") for i in range(4)]
        plan = plan_gang(nodes, members)
        assert plan is not None
        assert len(plan.victims) == 2  # one batch pod per node
        assert len(plan.assignment) == 4

    def test_gang_all_or_nothing(self):
        nodes = self.nodes(1)
        nodes[0].bind(pod("hpc-peer", 6.0, 20))  # not evictable
        members = [pod(f"r{i}", 4.0, 20, "g") for i in range(2)]
        assert plan_gang(nodes, members) is None

    def test_empty_gang(self):
        plan = plan_gang(self.nodes(), [])
        assert plan is not None and plan.assignment == {}

    def test_no_nodes(self):
        assert plan_gang([], [pod("r0", 1.0, 20, "g")]) is None

    def test_victims_not_double_counted(self):
        """Two ranks landing on the same node must not rely on evicting
        the same victim twice."""
        node = Node("n0", CAP)
        node.bind(pod("batch", 6.0, 5))
        members = [pod(f"r{i}", 4.0, 20, "g") for i in range(2)]
        plan = plan_gang([node], members)
        assert plan is not None
        assert [v.name for v in plan.victims] == ["batch"]
        assert set(plan.assignment.values()) == {"n0"}


class TestPreemptingScheduler:
    def test_service_preempts_batch(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0, preemption=True)
        scheduler.start()
        # Fill every node with low-priority batch.
        for i in range(3):
            api.create_pod(
                make_spec(f"batch-{i}", cpu=14, priority=5,
                          workload_class=WorkloadClass.BIGDATA)
            )
        engine.run_until(1.0)
        api.create_pod(make_spec("svc", cpu=4, priority=10))
        engine.run_until(2.0)
        svc = api.get_pod("svc")
        assert svc.node_name is not None
        assert scheduler.preemptions == 1
        evicted = [p for p in api.list_pods() if p.phase == PodPhase.EVICTED]
        assert len(evicted) == 1

    def test_gang_preempts_batch_atomically(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0, preemption=True)
        scheduler.start()
        for i in range(3):
            api.create_pod(
                make_spec(f"batch-{i}", cpu=10, priority=5,
                          workload_class=WorkloadClass.BIGDATA)
            )
        engine.run_until(1.0)
        for i in range(3):
            api.create_pod(
                make_spec(f"rank-{i}", cpu=12, priority=20, gang_id="g",
                          workload_class=WorkloadClass.HPC)
            )
        engine.run_until(2.0)
        assert all(api.get_pod(f"rank-{i}").node_name for i in range(3))
        assert scheduler.preemptions == 3

    def test_no_preemption_when_disabled(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0, preemption=False)
        scheduler.start()
        for i in range(3):
            api.create_pod(
                make_spec(f"batch-{i}", cpu=14, priority=5,
                          workload_class=WorkloadClass.BIGDATA)
            )
        engine.run_until(1.0)
        api.create_pod(make_spec("svc", cpu=4, priority=10))
        engine.run_until(3.0)
        assert api.get_pod("svc").phase == PodPhase.PENDING

    def test_equal_priority_never_preempts(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0, preemption=True)
        scheduler.start()
        for i in range(3):
            api.create_pod(make_spec(f"svc-{i}", cpu=14, priority=10))
        engine.run_until(1.0)
        api.create_pod(make_spec("late", cpu=4, priority=10))
        engine.run_until(3.0)
        assert api.get_pod("late").phase == PodPhase.PENDING
        assert scheduler.preemptions == 0
