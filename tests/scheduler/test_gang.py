"""Unit tests for gang admission."""

from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector
from repro.scheduler.gang import GangAdmission
from tests.conftest import make_spec


CAP = ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=500)


def pods(n, cpu=4.0, gang="g"):
    return [
        Pod(make_spec(f"rank-{i}", cpu=cpu, gang_id=gang), created_at=0.0)
        for i in range(n)
    ]


def nodes(n):
    return [Node(f"node-{i}", CAP) for i in range(n)]


def test_empty_gang_trivially_assignable():
    assert GangAdmission().find_assignment([], nodes(1)) == {}


def test_no_nodes_fails():
    assert GangAdmission().find_assignment(pods(1), []) is None


def test_gang_fits_one_per_node():
    assignment = GangAdmission().find_assignment(pods(3, cpu=6), nodes(3))
    assert assignment is not None
    assert len(assignment) == 3
    assert len(set(assignment.values())) == 3  # spread


def test_gang_packs_two_per_node():
    assignment = GangAdmission().find_assignment(pods(4, cpu=4), nodes(2))
    assert assignment is not None
    per_node = {}
    for node in assignment.values():
        per_node[node] = per_node.get(node, 0) + 1
    assert all(count == 2 for count in per_node.values())


def test_oversized_gang_rejected_atomically():
    # 5 ranks × 6 cpu onto 2 nodes × 8 cpu: impossible.
    assignment = GangAdmission().find_assignment(pods(5, cpu=6), nodes(2))
    assert assignment is None


def test_respects_existing_load():
    node_list = nodes(2)
    filler = Pod(make_spec("filler", cpu=7), created_at=0.0)
    node_list[0].bind(filler)
    assignment = GangAdmission().find_assignment(pods(2, cpu=6), node_list)
    assert assignment is None  # only node-1 has room for one rank


def test_assignment_respects_capacity():
    node_list = nodes(2)
    assignment = GangAdmission().find_assignment(pods(4, cpu=4), node_list)
    loads = {n.name: ResourceVector.zero() for n in node_list}
    all_pods = {p.name: p for p in pods(4, cpu=4)}
    for pod_name, node_name in assignment.items():
        loads[node_name] = loads[node_name] + all_pods[pod_name].allocation
    for node in node_list:
        assert loads[node.name].fits_within(node.allocatable)


def test_heterogeneous_gang_largest_first():
    big = Pod(make_spec("big", cpu=8, gang_id="g"), created_at=0.0)
    small = [
        Pod(make_spec(f"s{i}", cpu=2, gang_id="g"), created_at=0.0) for i in range(4)
    ]
    assignment = GangAdmission().find_assignment([*small, big], nodes(2))
    assert assignment is not None
    # The 8-cpu rank monopolizes one node; the rest pack on the other.
    big_node = assignment["big"]
    assert all(assignment[f"s{i}"] != big_node for i in range(4))
