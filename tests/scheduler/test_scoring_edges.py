"""Edge-case tests for converged scheduler scoring knobs."""

import pytest

from repro.cluster.pod import WorkloadClass
from repro.scheduler.converged import ConvergedScheduler
from repro.scheduler.kube import least_allocated_score, most_allocated_score
from tests.conftest import make_spec


def test_invalid_packing_mode(engine, api):
    with pytest.raises(ValueError, match="packing"):
        ConvergedScheduler(engine, api, packing="tetris")


def test_most_allocated_is_dual(engine, api):
    api.create_pod(make_spec("filler", cpu=8))
    api.bind_pod("filler", "node-0")
    pod = api.create_pod(make_spec("new", cpu=1))
    busy = api.get_node("node-0")
    idle = api.get_node("node-1")
    assert least_allocated_score(idle, pod) > least_allocated_score(busy, pod)
    assert most_allocated_score(busy, pod) > most_allocated_score(idle, pod)
    for node in (busy, idle):
        assert most_allocated_score(node, pod) == pytest.approx(
            1.0 - least_allocated_score(node, pod)
        )


def test_consolidate_fills_one_node_first(engine, api):
    scheduler = ConvergedScheduler(engine, api, interval=1.0,
                                   packing="consolidate",
                                   interference_weight=0.0)
    scheduler.start()
    for i in range(4):
        api.create_pod(make_spec(f"p{i}", cpu=2))
        engine.run_until(engine.now + 1.0)
    nodes_used = {api.get_pod(f"p{i}").node_name for i in range(4)}
    assert len(nodes_used) == 1


def test_preference_weight_zero_disables_steering(engine, api):
    api.get_node("node-2").labels["accelerator"] = "fpga"
    scheduler = ConvergedScheduler(engine, api, preference_weight=0.0,
                                   interference_weight=0.0)
    spec = make_spec("exec", workload_class=WorkloadClass.BIGDATA)
    pod = api.create_pod(spec)
    object.__setattr__(pod.spec, "node_preference", {"accelerator": "fpga"})
    # With zero weight the tiebreak (max name) wins, not the preference…
    # unless the preferred node already wins the tiebreak; assert via score.
    fpga = api.get_node("node-2")
    other = api.get_node("node-0")
    assert scheduler.score(fpga, pod) == pytest.approx(
        scheduler.score(other, pod)
    )


def test_preference_weight_breaks_ties(engine, api):
    api.get_node("node-1").labels["accelerator"] = "fpga"
    scheduler = ConvergedScheduler(engine, api, preference_weight=2.0,
                                   interference_weight=0.0)
    spec = make_spec("exec", workload_class=WorkloadClass.BIGDATA)
    pod = api.create_pod(spec)
    object.__setattr__(pod.spec, "node_preference", {"accelerator": "fpga"})
    assert scheduler.select_node(pod).name == "node-1"
