"""Property-based tests for placement logic."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector
from repro.scheduler.gang import GangAdmission
from repro.scheduler.preemption import plan_gang, plan_single
from tests.conftest import make_spec


node_caps = st.builds(
    ResourceVector,
    st.floats(4.0, 32.0),   # cpu
    st.floats(8.0, 128.0),  # memory
    st.floats(50.0, 500.0),
    st.floats(50.0, 500.0),
)

rank_shapes = st.tuples(st.floats(0.5, 12.0), st.floats(0.5, 16.0))


def build_nodes(caps):
    return [Node(f"n{i}", cap) for i, cap in enumerate(caps)]


def build_gang(shapes):
    return [
        Pod(make_spec(f"r{i}", cpu=cpu, memory=mem, gang_id="g", priority=20),
            created_at=0.0)
        for i, (cpu, mem) in enumerate(shapes)
    ]


class TestGangAdmissionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        caps=st.lists(node_caps, min_size=1, max_size=5),
        shapes=st.lists(rank_shapes, min_size=1, max_size=8),
    )
    def test_assignment_always_feasible(self, caps, shapes):
        """Whenever an assignment is returned, it physically fits."""
        nodes = build_nodes(caps)
        members = build_gang(shapes)
        assignment = GangAdmission().find_assignment(members, nodes)
        if assignment is None:
            return
        assert set(assignment) == {p.name for p in members}
        per_node: dict[str, ResourceVector] = {}
        by_name = {p.name: p for p in members}
        for pod_name, node_name in assignment.items():
            per_node.setdefault(node_name, ResourceVector.zero())
            per_node[node_name] = per_node[node_name] + by_name[pod_name].allocation
        for node in nodes:
            load = per_node.get(node.name, ResourceVector.zero())
            assert load.fits_within(node.free, tolerance=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        caps=st.lists(node_caps, min_size=1, max_size=4),
        shapes=st.lists(rank_shapes, min_size=1, max_size=6),
    )
    def test_admission_deterministic(self, caps, shapes):
        a = GangAdmission().find_assignment(build_gang(shapes), build_nodes(caps))
        b = GangAdmission().find_assignment(build_gang(shapes), build_nodes(caps))
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(
        caps=st.lists(node_caps, min_size=1, max_size=4),
        shapes=st.lists(rank_shapes, min_size=1, max_size=6),
    )
    def test_more_nodes_never_hurts(self, caps, shapes):
        """If the gang fits on a node set, it fits on a superset."""
        members = build_gang(shapes)
        small = GangAdmission().find_assignment(members, build_nodes(caps))
        if small is None:
            return
        bigger = build_nodes(caps) + [Node("extra", ResourceVector.uniform(1000))]
        assert GangAdmission().find_assignment(members, bigger) is not None


class TestPreemptionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        cap=node_caps,
        residents=st.lists(
            st.tuples(st.floats(0.5, 8.0), st.integers(0, 9)),
            min_size=0, max_size=5,
        ),
        incoming_cpu=st.floats(0.5, 16.0),
    )
    def test_plan_victims_suffice_and_are_lower_priority(
        self, cap, residents, incoming_cpu
    ):
        node = Node("n", cap)
        for i, (cpu, prio) in enumerate(residents):
            pod = Pod(make_spec(f"res-{i}", cpu=cpu, memory=0.1, priority=prio),
                      created_at=0.0)
            if node.can_fit(pod.allocation):
                node.bind(pod)
        incoming = Pod(
            make_spec("new", cpu=incoming_cpu, memory=0.1, priority=10),
            created_at=0.0,
        )
        plan = plan_single(node, incoming)
        if plan is None:
            return
        # Victims strictly lower priority.
        assert all(v.spec.priority < 10 for v in plan.victims)
        # Evicting them makes the pod fit.
        freed = node.free
        for victim in plan.victims:
            freed = freed + victim.allocation
        assert incoming.allocation.fits_within(freed, tolerance=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        caps=st.lists(node_caps, min_size=1, max_size=3),
        shapes=st.lists(rank_shapes, min_size=1, max_size=5),
        residents=st.lists(st.floats(0.5, 6.0), min_size=0, max_size=6),
    )
    def test_gang_plan_feasible_after_evictions(self, caps, shapes, residents):
        nodes = build_nodes(caps)
        for i, cpu in enumerate(residents):
            pod = Pod(make_spec(f"batch-{i}", cpu=cpu, memory=0.1, priority=1),
                      created_at=0.0)
            target = nodes[i % len(nodes)]
            if target.can_fit(pod.allocation):
                target.bind(pod)
        members = build_gang(shapes)
        plan = plan_gang(nodes, members)
        if plan is None:
            return
        # Apply the plan against real node accounting and check it holds.
        by_name = {p.name: p for p in members}
        for victim in plan.victims:
            for node in nodes:
                if victim.name in node.pods:
                    node.release(victim)
        for pod_name, node_name in plan.assignment.items():
            node = next(n for n in nodes if n.name == node_name)
            node.bind(by_name[pod_name])  # raises if infeasible
        for node in nodes:
            node.verify_invariants()
