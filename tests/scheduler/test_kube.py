"""Unit tests for the baseline kube scheduler."""

import pytest

from repro.cluster.pod import PodPhase
from repro.scheduler.kube import KubeScheduler
from tests.conftest import make_spec


def test_least_allocated_prefers_empty_node(engine, api):
    scheduler = KubeScheduler(engine, api)
    api.create_pod(make_spec("filler", cpu=10))
    api.bind_pod("filler", "node-0")
    api.create_pod(make_spec("new", cpu=1))
    node = scheduler.select_node(api.get_pod("new"))
    assert node.name in ("node-1", "node-2")


def test_binds_pending_pods_each_cycle(engine, api):
    scheduler = KubeScheduler(engine, api, interval=1.0)
    scheduler.start()
    api.create_pod(make_spec("p0"))
    api.create_pod(make_spec("p1"))
    engine.run_until(1.0)
    assert api.pending_pods() == []
    assert scheduler.binds == 2


def test_unschedulable_pod_retried(engine, api):
    scheduler = KubeScheduler(engine, api, interval=1.0)
    scheduler.start()
    api.create_pod(make_spec("huge", cpu=1000))
    engine.run_until(3.0)
    assert api.get_pod("huge").phase == PodPhase.PENDING
    assert scheduler.failures >= 3


def test_spreads_across_nodes(engine, api):
    scheduler = KubeScheduler(engine, api, interval=1.0)
    scheduler.start()
    for i in range(6):
        api.create_pod(make_spec(f"p{i}", cpu=2))
    engine.run_until(1.0)
    nodes_used = {api.get_pod(f"p{i}").node_name for i in range(6)}
    assert len(nodes_used) == 3  # spread over all nodes


def test_score_is_deterministic_tiebreak(engine, api):
    scheduler = KubeScheduler(engine, api)
    api.create_pod(make_spec("p"))
    pod = api.get_pod("p")
    # All nodes empty and identical ⇒ highest name wins the tiebreak,
    # but the important property is determinism:
    assert scheduler.select_node(pod).name == scheduler.select_node(pod).name


def test_gang_pods_bound_individually_can_strand(engine, api):
    """Vanilla scheduler has no gang awareness: it happily binds a partial
    gang — the pathology the converged scheduler fixes."""
    scheduler = KubeScheduler(engine, api, interval=1.0)
    scheduler.start()
    # Gang of 8 × 8-cpu ranks: cluster fits only 6 (3 nodes × 16 cpu).
    for i in range(8):
        api.create_pod(make_spec(f"rank-{i}", cpu=8, gang_id="job"))
    engine.run_until(2.0)
    bound = [p for p in api.list_pods() if p.node_name is not None]
    assert 0 < len(bound) < 8  # partial gang stranded


def test_invalid_interval(engine, api):
    with pytest.raises(ValueError):
        KubeScheduler(engine, api, interval=0)


def test_double_start_rejected(engine, api):
    scheduler = KubeScheduler(engine, api)
    scheduler.start()
    with pytest.raises(RuntimeError):
        scheduler.start()


def test_stop_halts_cycles(engine, api):
    scheduler = KubeScheduler(engine, api, interval=1.0)
    scheduler.start()
    engine.run_until(2.0)
    scheduler.stop()
    engine.run_until(10.0)
    assert scheduler.cycles == 2
