"""Unit and property tests for admission control and load shedding.

The property tests pin the conservation contract the
``shed-conservation`` invariant audits at runtime: every pod offered to
``admit_cycle`` is either admitted or shed (never both, never lost), the
controller's ledgers agree with its actions, and aged pods are exempt.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster.pod import PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.scheduler.admission import (
    SHED_CLASSES,
    AdmissionController,
    OverloadConfig,
    classify_pod,
)
from tests.conftest import make_spec


def make_controller(engine, api, **overrides):
    cfg = dict(admission=True)
    cfg.update(overrides)
    return AdmissionController(engine, api, OverloadConfig(**cfg))


def spec_for(name, shed_class, *, gang_id=None):
    """A pod spec that classifies as ``shed_class``."""
    if shed_class == "latency":
        cls, priority = WorkloadClass.MICROSERVICE, 10
    elif shed_class == "stream":
        cls, priority = WorkloadClass.BIGDATA, 8
    elif shed_class == "batch":
        cls, priority = WorkloadClass.BIGDATA, 5
    else:
        cls, priority = WorkloadClass.BIGDATA, -1
    return make_spec(
        name, cpu=0.5, memory=0.5, workload_class=cls,
        priority=priority, gang_id=gang_id,
    )


class TestClassification:
    def test_heuristics(self):
        for shed_class in SHED_CLASSES:
            pod_spec = spec_for("p", shed_class)
            from repro.cluster.pod import Pod

            assert classify_pod(Pod(pod_spec, created_at=0.0)) == shed_class

    def test_hpc_is_batch(self):
        from repro.cluster.pod import Pod

        spec = make_spec("p", workload_class=WorkloadClass.HPC, priority=20)
        assert classify_pod(Pod(spec, created_at=0.0)) == "batch"

    def test_label_override_wins(self):
        from repro.cluster.pod import Pod

        spec = PodSpec(
            name="p", app="a", workload_class=WorkloadClass.MICROSERVICE,
            requests=ResourceVector(cpu=1, memory=1),
            labels={"shed-class": "best-effort"},
        )
        assert classify_pod(Pod(spec, created_at=0.0)) == "best-effort"

    def test_unknown_label_falls_back(self):
        from repro.cluster.pod import Pod

        spec = PodSpec(
            name="p", app="a", workload_class=WorkloadClass.MICROSERVICE,
            requests=ResourceVector(cpu=1, memory=1),
            labels={"shed-class": "bogus"},
        )
        assert classify_pod(Pod(spec, created_at=0.0)) == "latency"


class TestOverloadConfig:
    def test_defaults_are_inert(self):
        cfg = OverloadConfig()
        assert not cfg.admission and not cfg.backpressure and not cfg.brownout
        assert not cfg.any_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadConfig(low_watermark=0.95, high_watermark=0.9)
        with pytest.raises(ValueError):
            OverloadConfig(pending_high=0)
        with pytest.raises(ValueError):
            OverloadConfig(starvation_timeout=0)
        with pytest.raises(ValueError):
            OverloadConfig(brownout_enter_error=0.1, brownout_exit_error=0.2)
        with pytest.raises(ValueError):
            OverloadConfig(brownout_demand_factor=0.0)
        with pytest.raises(ValueError):
            OverloadConfig(brownout_latency_penalty=-1)


class TestLatch:
    def test_enters_on_pressure_and_exits_with_hysteresis(
        self, engine, cluster, api
    ):
        ctl = make_controller(
            engine, api, high_watermark=0.5, low_watermark=0.25,
        )
        # 3 nodes x 16 cpu; 30 cpu allocated = 0.625 pressure.
        for i in range(15):
            cluster.submit(make_spec(f"p{i}", cpu=2, memory=1))
            cluster.bind(f"p{i}", f"node-{i % 3}")
        ctl.admit_cycle([])
        assert ctl.shedding_active and ctl.activations == 1
        # Dropping below high but above low keeps the latch set.
        for i in range(8):
            cluster.evict(f"p{i}", reason="test")
        ctl.admit_cycle([])
        assert ctl.shedding_active and ctl.activations == 1
        for i in range(8, 12):
            cluster.evict(f"p{i}", reason="test")
        ctl.admit_cycle([])
        assert not ctl.shedding_active

    def test_pending_depth_alone_activates(self, engine, cluster, api):
        ctl = make_controller(engine, api, pending_high=3)
        pending = []
        for i in range(3):
            pending.append(cluster.submit(spec_for(f"b{i}", "batch")))
        ctl.admit_cycle(pending)
        assert ctl.shedding_active

    def test_empty_cluster_reads_fully_pressured(self, engine, api, cluster):
        ctl = make_controller(engine, api)
        for node in cluster.nodes.values():
            node.allocatable = ResourceVector.zero()
        assert ctl.pressure() == 1.0


class TestShedPolicy:
    def hot_controller(self, engine, api, **overrides):
        """A controller whose latch is hot for any non-empty queue."""
        overrides.setdefault("pending_high", 1)
        return make_controller(engine, api, **overrides)

    def test_sheds_newest_best_effort_first(self, engine, cluster, api):
        ctl = self.hot_controller(engine, api, max_shed_per_cycle=1)
        pending = [
            cluster.submit(spec_for("be-old", "best-effort")),
            cluster.submit(spec_for("be-new", "best-effort")),
            cluster.submit(spec_for("batch-0", "batch")),
        ]
        admitted = ctl.admit_cycle(pending)
        assert [p.name for p in admitted] == ["batch-0", "be-old"]
        assert cluster.get_pod("be-new").phase is PodPhase.EVICTED
        assert ctl.shed_by_class["best-effort"] == 1

    def test_batch_shed_only_after_best_effort(self, engine, cluster, api):
        ctl = self.hot_controller(engine, api, max_shed_per_cycle=3)
        pending = [
            cluster.submit(spec_for("ba-0", "batch")),
            cluster.submit(spec_for("be-0", "best-effort")),
            cluster.submit(spec_for("be-1", "best-effort")),
            cluster.submit(spec_for("lat-0", "latency")),
        ]
        admitted = ctl.admit_cycle(pending)
        assert [p.name for p in admitted] == ["lat-0"]
        assert ctl.shed_by_class == {
            "latency": 0, "stream": 0, "batch": 1, "best-effort": 2,
        }

    def test_latency_and_stream_never_shed(self, engine, cluster, api):
        ctl = self.hot_controller(engine, api, max_shed_per_cycle=100)
        pending = [
            cluster.submit(spec_for("lat-0", "latency")),
            cluster.submit(spec_for("st-0", "stream")),
        ]
        admitted = ctl.admit_cycle(pending)
        assert len(admitted) == 2
        assert ctl.shed_total == 0

    def test_gang_members_exempt(self, engine, cluster, api):
        ctl = self.hot_controller(engine, api, max_shed_per_cycle=100)
        pending = [
            cluster.submit(spec_for("g-0", "best-effort", gang_id="g")),
            cluster.submit(spec_for("solo", "best-effort")),
        ]
        admitted = ctl.admit_cycle(pending)
        assert [p.name for p in admitted] == ["g-0"]
        assert ctl.shed_total == 1

    def test_admitted_ordered_most_protected_first(self, engine, cluster, api):
        ctl = self.hot_controller(engine, api, max_shed_per_cycle=0)
        pending = [
            cluster.submit(spec_for("ba-0", "batch")),
            cluster.submit(spec_for("lat-0", "latency")),
            cluster.submit(spec_for("be-0", "best-effort")),
            cluster.submit(spec_for("st-0", "stream")),
        ]
        admitted = ctl.admit_cycle(pending)
        assert [p.name for p in admitted] == ["lat-0", "st-0", "ba-0", "be-0"]

    def test_cool_latch_is_passthrough(self, engine, cluster, api):
        ctl = make_controller(engine, api)
        pending = [cluster.submit(spec_for("be-0", "best-effort"))]
        assert ctl.admit_cycle(pending) is pending
        assert ctl.shed_total == 0


class TestNonStarvation:
    def test_aged_pods_admitted_first_and_never_shed(
        self, engine, cluster, api
    ):
        ctl = make_controller(
            engine, api, pending_high=1, starvation_timeout=300.0,
            max_shed_per_cycle=100,
        )
        old = cluster.submit(spec_for("be-old", "best-effort"))
        engine.run_until(400.0)  # past the starvation timeout
        fresh = [
            cluster.submit(spec_for("lat-0", "latency")),
            cluster.submit(spec_for("be-new", "best-effort")),
        ]
        admitted = ctl.admit_cycle([old] + fresh)
        # The aged best-effort pod outranks even fresh latency work and
        # is exempt from the shed sweep that takes its fresh sibling.
        assert [p.name for p in admitted] == ["be-old", "lat-0"]
        assert cluster.get_pod("be-new").phase is PodPhase.EVICTED
        assert ctl.aged_admissions == 1

    def test_sustained_overload_every_class_progresses(
        self, engine, cluster, api
    ):
        """Under a permanently hot latch, batch and best-effort work
        still gets admitted once it ages past the starvation timeout."""
        ctl = make_controller(
            engine, api, pending_high=1, starvation_timeout=100.0,
            max_shed_per_cycle=1,
        )
        survivors = {
            cls: cluster.submit(spec_for(f"{cls}-seed", cls))
            for cls in SHED_CLASSES
        }
        admitted_classes: set[str] = set()
        for cycle in range(12):
            engine.run_until(engine.now + 20.0)
            pending = [
                pod for pod in survivors.values()
                if pod.phase is PodPhase.PENDING
            ]
            # Fresh churn arriving every cycle keeps the queue deep.
            churn = cluster.submit(
                spec_for(f"churn-{cycle}", "best-effort")
            )
            result = ctl.admit_cycle(pending + [churn])
            admitted_classes.update(
                classify_pod(p) for p in result if p.name in
                {pod.name for pod in survivors.values()}
            )
        assert admitted_classes == set(SHED_CLASSES)


class TestRunningEviction:
    def test_evicts_newest_running_best_effort_when_stuck(
        self, engine, cluster, api
    ):
        ctl = make_controller(engine, api, pending_high=1)
        cluster.submit(spec_for("be-run-0", "best-effort"))
        cluster.bind("be-run-0", "node-0")
        engine.run_until(10.0)
        cluster.submit(spec_for("be-run-1", "best-effort"))
        cluster.bind("be-run-1", "node-1")
        stuck = cluster.submit(spec_for("lat-0", "latency"))
        ctl.admit_cycle([stuck])
        ctl.post_cycle()
        assert cluster.get_pod("be-run-1").phase is PodPhase.EVICTED
        assert cluster.get_pod("be-run-0").phase is not PodPhase.EVICTED
        assert ctl.evicted_running == 1

    def test_no_eviction_without_stuck_high_class_work(
        self, engine, cluster, api
    ):
        ctl = make_controller(engine, api, pending_high=1)
        cluster.submit(spec_for("be-run", "best-effort"))
        cluster.bind("be-run", "node-0")
        batch = cluster.submit(spec_for("ba-0", "batch"))
        ctl.admit_cycle([batch])
        ctl.post_cycle()
        assert ctl.evicted_running == 0

    def test_disabled_by_config(self, engine, cluster, api):
        ctl = make_controller(engine, api, pending_high=1, evict_running=False)
        cluster.submit(spec_for("be-run", "best-effort"))
        cluster.bind("be-run", "node-0")
        stuck = cluster.submit(spec_for("lat-0", "latency"))
        ctl.admit_cycle([stuck])
        ctl.post_cycle()
        assert ctl.evicted_running == 0


# -- conservation properties ---------------------------------------------------

pod_classes = st.lists(
    st.sampled_from(SHED_CLASSES), min_size=0, max_size=16
)
gang_flags = st.lists(st.booleans(), min_size=16, max_size=16)


class TestConservationProperties:
    @settings(max_examples=40, deadline=None)
    @given(classes=pod_classes, gangs=gang_flags, budget=st.integers(0, 8))
    def test_every_pod_admitted_or_shed_exactly_once(
        self, classes, gangs, budget
    ):
        from repro.cluster.api import ClusterAPI
        from repro.sim.engine import Engine
        from tests.conftest import make_cluster

        engine = Engine()
        cluster = make_cluster(engine)
        api = ClusterAPI(cluster)
        ctl = make_controller(
            engine, api, pending_high=1, max_shed_per_cycle=budget,
        )
        pending = [
            cluster.submit(
                spec_for(
                    f"p{i}", cls,
                    gang_id="g" if gangs[i] else None,
                )
            )
            for i, cls in enumerate(classes)
        ]
        admitted = ctl.admit_cycle(list(pending))
        admitted_names = {p.name for p in admitted}
        shed_names = {
            p.name for p in pending
            if p.phase is PodPhase.EVICTED
        }
        # Partition: every offered pod lands in exactly one bucket.
        assert admitted_names | shed_names == {p.name for p in pending}
        assert not admitted_names & shed_names
        # The ledger agrees with the actions.
        assert ctl.shed_total == len(shed_names)
        assert ctl.shed_total == sum(ctl.shed_by_class.values())
        assert ctl.shed_total == ctl.rejected_pending + ctl.evicted_running
        assert ctl.shed_total <= budget
        # Shed victims only ever come from the two lowest classes, and
        # never from gangs.
        for pod in pending:
            if pod.name in shed_names:
                assert classify_pod(pod) in ("batch", "best-effort")
                assert pod.spec.gang_id is None

    @settings(max_examples=25, deadline=None)
    @given(classes=pod_classes)
    def test_admission_is_deterministic(self, classes):
        from repro.cluster.api import ClusterAPI
        from repro.sim.engine import Engine
        from tests.conftest import make_cluster

        def run():
            engine = Engine()
            cluster = make_cluster(engine)
            api = ClusterAPI(cluster)
            ctl = make_controller(
                engine, api, pending_high=1, max_shed_per_cycle=4,
            )
            pending = [
                cluster.submit(spec_for(f"p{i}", cls))
                for i, cls in enumerate(classes)
            ]
            admitted = ctl.admit_cycle(pending)
            return [p.name for p in admitted], ctl.stats()

        assert run() == run()
