"""Unit tests for the converged and siloed schedulers."""

import pytest

from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.scheduler.converged import ConvergedScheduler, SiloedScheduler
from repro.scheduler.interference import interference_penalty, node_noise
from repro.storage.objectstore import ObjectStore
from repro.storage.placement import spread_blocks
from tests.conftest import make_spec


class TestConvergedGangs:
    def test_gang_admitted_atomically(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0)
        scheduler.start()
        for i in range(3):
            api.create_pod(
                make_spec(f"rank-{i}", cpu=8, gang_id="job",
                          workload_class=WorkloadClass.HPC)
            )
        engine.run_until(1.0)
        assert all(p.node_name is not None for p in api.list_pods())
        assert scheduler.gangs_admitted == 1

    def test_oversized_gang_fully_deferred(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0)
        scheduler.start()
        for i in range(8):
            api.create_pod(
                make_spec(f"rank-{i}", cpu=8, gang_id="job",
                          workload_class=WorkloadClass.HPC)
            )
        engine.run_until(2.0)
        assert all(p.phase == PodPhase.PENDING for p in api.list_pods())
        assert scheduler.gangs_deferred >= 1

    def test_backfill_behind_blocked_gang(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0)
        scheduler.start()
        for i in range(8):
            api.create_pod(
                make_spec(f"rank-{i}", cpu=8, gang_id="big",
                          workload_class=WorkloadClass.HPC)
            )
        api.create_pod(make_spec("small", cpu=1))
        engine.run_until(1.0)
        assert api.get_pod("small").node_name is not None

    def test_gangs_admitted_fifo(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0)
        for i in range(2):
            api.create_pod(
                make_spec(f"a-{i}", cpu=8, gang_id="first",
                          workload_class=WorkloadClass.HPC)
            )
        engine.run_until(0.5)
        for i in range(2):
            api.create_pod(
                make_spec(f"b-{i}", cpu=8, gang_id="second",
                          workload_class=WorkloadClass.HPC)
            )
        scheduler.start()
        engine.run_until(2.0)
        assert all(api.get_pod(f"a-{i}").node_name for i in range(2))


class TestConvergedLocality:
    def test_bigdata_pod_follows_dataset(self, engine, api):
        store = ObjectStore()
        spread_blocks(store, "sales", total_mb=100, block_mb=10, nodes=["node-2"])
        scheduler = ConvergedScheduler(engine, api, store=store, interval=1.0,
                                       locality_weight=5.0)
        spec = make_spec("exec-0", cpu=2, workload_class=WorkloadClass.BIGDATA)
        pod = api.create_pod(spec)
        pod.spec.labels["dataset"] = "sales"  # type: ignore[index]
        node = scheduler.select_node(pod)
        assert node.name == "node-2"

    def test_missing_dataset_ignored(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, store=ObjectStore())
        spec = make_spec("exec-0", workload_class=WorkloadClass.BIGDATA)
        pod = api.create_pod(spec)
        assert scheduler.select_node(pod) is not None


class TestInterference:
    def test_penalty_zero_on_empty_node(self, engine, api):
        pod = api.create_pod(make_spec("svc-0"))
        node = api.get_node("node-0")
        assert interference_penalty(node, pod) == 0.0

    def test_noisy_neighbour_raises_penalty(self, engine, api):
        noisy = api.create_pod(
            make_spec("batch-0", cpu=12, workload_class=WorkloadClass.BIGDATA)
        )
        api.bind_pod("batch-0", "node-0")
        noisy.record_usage(ResourceVector(cpu=12))
        svc = api.create_pod(make_spec("svc-0"))
        busy = interference_penalty(api.get_node("node-0"), svc)
        idle = interference_penalty(api.get_node("node-1"), svc)
        assert busy > idle

    def test_bigdata_insensitive(self, engine, api):
        noisy = api.create_pod(
            make_spec("batch-0", cpu=12, workload_class=WorkloadClass.BIGDATA)
        )
        api.bind_pod("batch-0", "node-0")
        noisy.record_usage(ResourceVector(cpu=12))
        node = api.get_node("node-0")
        svc = api.create_pod(make_spec("svc-0"))
        batch = api.create_pod(
            make_spec("batch-1", workload_class=WorkloadClass.BIGDATA)
        )
        assert interference_penalty(node, svc) > interference_penalty(node, batch)

    def test_converged_spreads_sensitive_pods(self, engine, api):
        scheduler = ConvergedScheduler(engine, api, interval=1.0,
                                       interference_weight=2.0)
        noisy = api.create_pod(
            make_spec("batch-0", cpu=4, workload_class=WorkloadClass.BIGDATA)
        )
        api.bind_pod("batch-0", "node-0")
        noisy.record_usage(ResourceVector(cpu=4, disk_bw=400))
        svc = api.create_pod(make_spec("svc-0"))
        node = scheduler.select_node(svc)
        assert node.name != "node-0"

    def test_node_noise_aggregates(self, engine, api):
        p = api.create_pod(
            make_spec("b", cpu=8, workload_class=WorkloadClass.BIGDATA)
        )
        api.bind_pod("b", "node-0")
        p.record_usage(ResourceVector(cpu=8))
        assert node_noise(api.get_node("node-0")) > 0


class TestSiloed:
    def pools(self):
        return {
            WorkloadClass.MICROSERVICE: ["node-0"],
            WorkloadClass.BIGDATA: ["node-1"],
            WorkloadClass.HPC: ["node-2"],
        }

    def test_pods_confined_to_pools(self, engine, api):
        scheduler = SiloedScheduler(engine, api, pools=self.pools(), interval=1.0)
        scheduler.start()
        api.create_pod(make_spec("svc-0"))
        api.create_pod(make_spec("exec-0", workload_class=WorkloadClass.BIGDATA))
        engine.run_until(1.0)
        assert api.get_pod("svc-0").node_name == "node-0"
        assert api.get_pod("exec-0").node_name == "node-1"

    def test_full_pool_strands_despite_cluster_capacity(self, engine, api):
        """The silo pathology: microservice pool is full while other pools
        sit idle, so the pod stays pending."""
        scheduler = SiloedScheduler(engine, api, pools=self.pools(), interval=1.0)
        scheduler.start()
        api.create_pod(make_spec("svc-0", cpu=12))
        api.create_pod(make_spec("svc-1", cpu=12))
        engine.run_until(2.0)
        pending = api.pending_pods()
        assert len(pending) == 1
        assert pending[0].name == "svc-1"

    def test_gang_within_pool(self, engine, api):
        scheduler = SiloedScheduler(engine, api, pools=self.pools(), interval=1.0)
        scheduler.start()
        for i in range(2):
            api.create_pod(
                make_spec(f"rank-{i}", cpu=6, gang_id="g",
                          workload_class=WorkloadClass.HPC)
            )
        engine.run_until(1.0)
        assert all(
            api.get_pod(f"rank-{i}").node_name == "node-2" for i in range(2)
        )

    def test_unknown_pool_node_rejected(self, engine, api):
        with pytest.raises(ValueError):
            SiloedScheduler(
                engine, api, pools={WorkloadClass.HPC: ["ghost"]}
            )

    def test_class_without_pool_uses_any_node(self, engine, api):
        scheduler = SiloedScheduler(
            engine, api, pools={WorkloadClass.HPC: ["node-2"]}, interval=1.0
        )
        scheduler.start()
        api.create_pod(make_spec("svc-0"))
        engine.run_until(1.0)
        assert api.get_pod("svc-0").node_name is not None
