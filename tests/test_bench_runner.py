"""Tests for the unified benchmark runner (``benchmarks.runner``).

These tests exercise the registry/budget/artifact machinery, not the
experiments themselves — the experiments are run by
``python -m benchmarks.runner --smoke`` (the CI ``bench`` job). Only the
determinism test executes a real (cheap) experiment.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

runner = pytest.importorskip(
    "benchmarks.runner",
    reason="benchmarks/ is a repo-level package; run pytest from the "
           "repository root",
)

BENCH_DIR = Path(runner.__file__).resolve().parent


def _stub_experiment(**budgets):
    return runner.Experiment(
        "stub", "benchmarks.stub", "stub experiment",
        lambda mode: {
            "seed": 7,
            "events_executed": 100,
            "metrics": {"applied": 40, "nested": {"deep": 5}},
            "timing": {"wall_thing": 0.5},
        },
        budgets=budgets,
    )


class TestRegistry:
    def test_every_bench_module_registered_exactly_once(self):
        # The registry is the single entry point for CI: a bench_*.py
        # file that is not registered silently falls out of the perf
        # trajectory.
        on_disk = {
            f"benchmarks.{path.stem}"
            for path in BENCH_DIR.glob("bench_*.py")
        }
        registered = [e.module for e in runner.EXPERIMENTS]
        assert sorted(registered) == sorted(set(registered)), (
            "a module is registered twice"
        )
        assert set(registered) == on_disk

    def test_registry_names_are_unique_and_match_experiments(self):
        assert set(runner.REGISTRY) == {e.name for e in runner.EXPERIMENTS}
        assert len(runner.REGISTRY) == len(runner.EXPERIMENTS)

    def test_budget_paths_resolve_to_known_payload_fields(self):
        for exp in runner.EXPERIMENTS:
            for path in exp.budgets:
                head = path.split(".")[0]
                assert head in ("events_executed", "metrics"), (
                    f"{exp.name}: budget path {path!r} does not target a "
                    "deterministic payload field"
                )


class TestBudgets:
    def test_within_budget_ok(self):
        exp = _stub_experiment(**{"events_executed": 120,
                                  "metrics.applied": 50})
        verdicts = runner.check_budgets(exp, exp.run("smoke"))
        assert verdicts["events_executed"] == {
            "value": 100, "budget": 120, "ok": True,
        }
        assert verdicts["metrics.applied"]["ok"]

    def test_over_budget_flags_regression(self):
        exp = _stub_experiment(**{"metrics.applied": 39})
        verdicts = runner.check_budgets(exp, exp.run("smoke"))
        assert not verdicts["metrics.applied"]["ok"]

    def test_missing_path_is_a_failure_not_a_pass(self):
        exp = _stub_experiment(**{"metrics.no_such_metric": 10})
        verdicts = runner.check_budgets(exp, exp.run("smoke"))
        assert not verdicts["metrics.no_such_metric"]["ok"]
        assert verdicts["metrics.no_such_metric"]["value"] is None

    def test_dotted_lookup_descends_nested_dicts(self):
        exp = _stub_experiment(**{"metrics.nested.deep": 5})
        verdicts = runner.check_budgets(exp, exp.run("smoke"))
        assert verdicts["metrics.nested.deep"]["ok"]


class TestPayload:
    def test_smoke_payload_schema(self):
        exp = _stub_experiment(**{"events_executed": 120})
        payload = runner.run_experiment(exp, "smoke")
        assert set(payload) == {
            "experiment", "module", "title", "mode", "seed",
            "wall_seconds", "events_executed", "events_per_sec",
            "metrics", "timing", "budgets", "ok",
        }
        assert payload["mode"] == "smoke"
        assert payload["seed"] == 7
        assert payload["ok"] is True
        assert payload["budgets"]["events_executed"]["ok"]

    def test_full_mode_skips_budgets(self):
        # Full-mode counts legitimately dwarf the smoke bounds; gating
        # them would make --full unusable.
        exp = _stub_experiment(**{"events_executed": 1})
        payload = runner.run_experiment(exp, "full")
        assert payload["budgets"] == {}
        assert payload["ok"] is True

    def test_budget_breach_marks_payload_not_ok(self):
        exp = _stub_experiment(**{"events_executed": 99})
        payload = runner.run_experiment(exp, "smoke")
        assert payload["ok"] is False

    def test_write_result_emits_bench_json(self, tmp_path):
        exp = _stub_experiment()
        payload = runner.run_experiment(exp, "smoke")
        path = runner.write_result(payload, tmp_path)
        assert path == tmp_path / "BENCH_stub.json"
        on_disk = json.loads(path.read_text())
        assert on_disk == payload


class TestDeterminism:
    def test_smoke_metrics_identical_across_runs(self):
        # The contract the CI budgets rest on: everything outside the
        # ``timing``/``wall_seconds`` fields is bit-identical run to run.
        exp = runner.REGISTRY["t9"]
        first = runner.run_experiment(exp, "smoke")
        second = runner.run_experiment(exp, "smoke")
        assert first["metrics"] == second["metrics"]
        assert first["events_executed"] == second["events_executed"]
        assert first["seed"] == second["seed"]
        assert first["budgets"] == second["budgets"]
        assert first["ok"] and second["ok"]
