"""Unit tests for the Chrome trace_event and JSONL exporters."""

import json

import pytest

from repro.cluster.chaos import FaultLog
from repro.obs.export import (
    TIME_SCALE,
    filter_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.tracing import DecisionProvenance, Tracer
from repro.sim.engine import Engine


@pytest.fixture
def tracer(engine: Engine) -> Tracer:
    return Tracer(engine)


def _sample_trace(tracer: Tracer):
    """scrape → decide → actuate plus one provenance record."""
    scrape = tracer.instant("scrape", "metrics", round=1)
    decide = tracer.instant("decide", "control", parent=scrape, app="web")
    actuate = tracer.instant("actuate", "actuation", parent=decide,
                             outcome="applied")
    trace = tracer.trace
    trace.provenance.append(DecisionProvenance(
        app="web", time=0.0, verdict="actuated", action="grow",
        error=0.1, output=0.2, gain_scale=None, terms=None,
        inputs={}, signal_age=0.0, stale_periods=0, safe_mode=False,
        deadband=0.0, clamped=False, weights={}, target=None,
        replicas=1, lease_generation=None, scrape_span_id=scrape.id,
        span_id=decide.id, active_faults=(), tuner_event=None,
    ))
    return scrape, decide, actuate


class TestChromeTrace:
    def test_spans_become_complete_events(self, tracer):
        _sample_trace(tracer)
        doc = to_chrome_trace(tracer.trace)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["scrape", "decide",
                                                 "actuate"]
        # Category-stable tracks: metrics / control / actuation.
        assert [e["tid"] for e in complete] == [1, 2, 3]

    def test_causal_edges_become_flow_pairs(self, tracer):
        _, decide, actuate = _sample_trace(tracer)
        doc = to_chrome_trace(tracer.trace)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        # One pair per parent link (decide→scrape, actuate→decide),
        # id'd by the child span so the pair matches up.
        assert {e["id"] for e in starts} == {decide.id, actuate.id}
        assert {e["id"] for e in finishes} == {decide.id, actuate.id}

    def test_timestamps_scaled_to_microseconds(self, engine, tracer):
        engine.schedule(2.0, lambda: tracer.instant("late"))
        engine.run_until(2.0)
        doc = to_chrome_trace(tracer.trace)
        assert doc["traceEvents"][0]["ts"] == 2.0 * TIME_SCALE

    def test_zero_length_spans_get_visible_duration(self, tracer):
        tracer.instant("tick")
        doc = to_chrome_trace(tracer.trace)
        assert doc["traceEvents"][0]["dur"] >= 1.0

    def test_args_carry_span_and_parent_ids(self, tracer):
        _, decide, _ = _sample_trace(tracer)
        doc = to_chrome_trace(tracer.trace)
        event = next(e for e in doc["traceEvents"]
                     if e.get("args", {}).get("span_id") == decide.id)
        assert event["args"]["parent_id"] == decide.parent_id

    def test_fault_episodes_on_dedicated_track(self, tracer):
        _sample_trace(tracer)
        log = FaultLog()
        log.record("node-crash", "node-1", 0.0, 5.0, detail="test")
        doc = to_chrome_trace(tracer.trace, fault_log=log)
        faults = [e for e in doc["traceEvents"] if e["cat"] == "fault"]
        assert len(faults) == 1
        assert faults[0]["tid"] == 6
        assert faults[0]["args"]["eid"] == 0

    def test_open_fault_extends_to_trace_end(self, engine, tracer):
        engine.schedule(10.0, lambda: tracer.instant("late"))
        engine.run_until(10.0)
        log = FaultLog()
        log.open("partition", "ctrl-1", 4.0)
        doc = to_chrome_trace(tracer.trace, fault_log=log)
        fault = next(e for e in doc["traceEvents"] if e["cat"] == "fault")
        assert fault["dur"] == pytest.approx((10.0 - 4.0) * TIME_SCALE)

    def test_non_serializable_args_are_repred(self, tracer):
        tracer.instant("odd", payload=object())
        doc = to_chrome_trace(tracer.trace)
        json.dumps(doc)  # must not raise

    def test_write_returns_event_count(self, tracer, tmp_path):
        _sample_trace(tracer)
        path = tmp_path / "out.json"
        count = write_chrome_trace(tracer.trace, str(path))
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"])
        assert doc["metadata"]["spans"] == 3


class TestJsonl:
    def test_one_typed_object_per_line(self, tracer, tmp_path):
        _sample_trace(tracer)
        log = FaultLog()
        log.record("node-crash", "node-1", 0.0, 5.0)
        path = tmp_path / "out.jsonl"
        count = write_trace_jsonl(tracer.trace, str(path), fault_log=log)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert count == len(lines) == 5  # 3 spans + 1 provenance + 1 fault
        kinds = [line["type"] for line in lines]
        assert kinds.count("span") == 3
        assert kinds.count("provenance") == 1
        assert kinds.count("fault") == 1

    def test_provenance_line_carries_causal_ids(self, tracer, tmp_path):
        scrape, decide, _ = _sample_trace(tracer)
        path = tmp_path / "out.jsonl"
        write_trace_jsonl(tracer.trace, str(path))
        prov = next(json.loads(line)
                    for line in path.read_text().splitlines()
                    if json.loads(line)["type"] == "provenance")
        assert prov["scrape_span_id"] == scrape.id
        assert prov["span_id"] == decide.id


class TestEdgeCases:
    def test_empty_trace_exports_cleanly(self, tracer, tmp_path):
        doc = to_chrome_trace(tracer.trace)
        assert doc["traceEvents"] == []
        assert doc["metadata"]["spans"] == 0
        json.dumps(doc)  # loadable by Perfetto
        path = tmp_path / "empty.jsonl"
        assert write_trace_jsonl(tracer.trace, str(path)) == 0
        assert path.read_text() == ""

    def test_only_unfinished_spans_export(self, engine, tracer):
        # begin() without end(): the span's end stays at its start, so
        # it exports as a minimum-width complete event, not a crash.
        engine.schedule(3.0, lambda: tracer.begin("stuck", "control"))
        engine.run_until(3.0)
        doc = to_chrome_trace(tracer.trace)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["name"] == "stuck"
        assert event["ts"] == pytest.approx(3.0 * TIME_SCALE)
        assert event["dur"] >= 1.0

    def test_zero_telemetry_sample_run_chrome_output(self, tmp_path):
        # A platform run whose collector never scraped (duration
        # shorter than the scrape interval) still produces a valid,
        # loadable Chrome trace with zero metrics-track events.
        from repro.platform.config import ClusterSpec, PlatformConfig
        from repro.platform.evolve import EvolvePlatform

        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=2),
            config=PlatformConfig(seed=1, telemetry=True),
        )
        platform.run(1.0)  # below the 5 s scrape interval
        path = tmp_path / "calm.json"
        write_chrome_trace(platform.telemetry.trace, str(path),
                           fault_log=platform.fault_log)
        doc = json.loads(path.read_text())
        assert not [e for e in doc["traceEvents"]
                    if e.get("name") == "scrape"]
        json.dumps(doc)


class TestFilterTrace:
    def test_name_prefix_keeps_matching_spans_and_provenance(self, tracer):
        scrape, decide, actuate = _sample_trace(tracer)
        out = filter_trace(tracer.trace, name_prefix="dec")
        assert [s.id for s in out.spans] == [decide.id]
        # The provenance record's decision span survived the filter.
        assert [p.span_id for p in out.provenance] == [decide.id]
        out = filter_trace(tracer.trace, name_prefix="scr")
        assert [s.id for s in out.spans] == [scrape.id]
        assert out.provenance == []  # decision span filtered away

    def test_since_drops_earlier_spans(self, engine, tracer):
        tracer.instant("early")
        engine.schedule(10.0, lambda: tracer.instant("late"))
        engine.run_until(10.0)
        out = filter_trace(tracer.trace, since=5.0)
        assert [s.name for s in out.spans] == ["late"]

    def test_filters_compose(self, engine, tracer):
        tracer.instant("shed", "sched")
        engine.schedule(10.0, lambda: tracer.instant("shed", "sched"))
        engine.schedule(10.0, lambda: tracer.instant("other"))
        engine.run_until(10.0)
        out = filter_trace(tracer.trace, name_prefix="shed", since=5.0)
        assert len(out.spans) == 1
        assert out.spans[0].start == 10.0

    def test_sliced_trace_exports_with_dangling_parents(self, tracer):
        # A kept child whose parent was filtered out must not break the
        # Chrome exporter (flow arrows are guarded by trace.get).
        _, _, actuate = _sample_trace(tracer)
        out = filter_trace(tracer.trace, name_prefix="act")
        assert [s.id for s in out.spans] == [actuate.id]
        doc = to_chrome_trace(out)
        assert [e["ph"] for e in doc["traceEvents"]] == ["X"]

    def test_no_filters_is_a_copy_with_everything(self, tracer):
        _sample_trace(tracer)
        out = filter_trace(tracer.trace)
        assert len(out.spans) == 3
        assert len(out.provenance) == 1
