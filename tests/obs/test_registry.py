"""Unit tests for the self-metrics registry."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REGISTERED_NAMESPACES,
    Histogram,
    MetricsRegistry,
    lint_names,
    lint_namespaces,
    validate_name,
)


class TestNaming:
    def test_valid_names_pass(self):
        for name in ("decisions_total", "a", "x9/y_z", "wal_appends_total"):
            assert validate_name(name) == name

    def test_invalid_names_rejected(self):
        for name in ("Decisions", "9lives", "_x", "a-b", "a.b", "", "a b"):
            with pytest.raises(ValueError):
                validate_name(name)

    def test_lint_names_returns_offenders(self):
        assert lint_names(["ok_name", "Bad", "also/ok", "no-good"]) == [
            "Bad", "no-good",
        ]

    def test_registry_rejects_bad_name(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("NotSnake")


class TestNamespaceLint:
    def test_registered_namespaces_pass(self):
        names = [f"{ns}/thing_total" for ns in REGISTERED_NAMESPACES]
        assert lint_namespaces(names) == []

    def test_unregistered_prefix_flagged(self):
        assert lint_namespaces([
            "sched/shed_total",
            "widget/count",          # unregistered namespace
            "dp/stream/lag_events",  # nested segments are fine
            "typo/into/the_void",
        ]) == ["widget/count", "typo/into/the_void"]

    def test_flat_names_are_exempt(self):
        # Legacy un-namespaced instruments (decisions_total, scrapes)
        # carry no prefix to validate.
        assert lint_namespaces(["decisions_total", "scrapes"]) == []

    def test_telemetry_instruments_pass_the_namespace_lint(self):
        # Every namespaced instrument Telemetry pre-registers must use
        # a declared namespace — the CI entry point fails otherwise.
        from repro.obs.telemetry import Telemetry
        from repro.sim.engine import Engine

        telemetry = Telemetry(Engine())
        namespaced = [n for n in telemetry.registry.names() if "/" in n]
        assert namespaced, "expected sched/dp/store instruments"
        assert lint_namespaces(telemetry.registry.names()) == []


class TestCounterGauge:
    def test_counter_increments(self):
        c = MetricsRegistry().counter("hits_total")
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_duplicate_registration_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError):
            r.gauge("x_total")


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_observations_land_in_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # [≤1, ≤10, +inf]
        assert h.count == 4
        assert h.sum == pytest.approx(56.4)
        assert h.mean == pytest.approx(14.1)

    def test_empty_histogram_has_no_quantile(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.quantile(50) is None
        assert h.mean is None

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all in (10, 20]
        # Rank q% of 10 observations falls q% of the way through the
        # second bucket: lower + fraction * (upper - lower).
        assert h.quantile(50) == pytest.approx(15.0)
        assert h.quantile(100) == pytest.approx(20.0)

    def test_overflow_reports_top_finite_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(99.0)
        assert h.quantile(99) == 2.0

    def test_quantile_range_checked(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(101)

    def test_default_buckets_are_valid(self):
        Histogram("h", buckets=DEFAULT_BUCKETS)


class TestSampleMetrics:
    def test_flattens_all_instrument_kinds(self):
        r = MetricsRegistry()
        r.counter("ops_total").inc(7)
        r.gauge("queue_depth").set(3)
        h = r.histogram("latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        out = r.sample_metrics(0.0)
        assert out["ops_total"] == 7.0
        assert out["queue_depth"] == 3.0
        assert out["latency/count"] == 2.0
        assert out["latency/sum"] == pytest.approx(5.5)
        assert set(out) >= {"latency/p50", "latency/p95", "latency/p99"}

    def test_empty_histogram_exports_count_only(self):
        r = MetricsRegistry()
        r.histogram("latency", buckets=(1.0,))
        out = r.sample_metrics(0.0)
        assert out["latency/count"] == 0.0
        assert "latency/p50" not in out

    def test_exported_names_obey_naming_law(self):
        r = MetricsRegistry()
        r.counter("a_total")
        r.histogram("b", buckets=(1.0,)).observe(0.5)
        assert lint_names(list(r.sample_metrics(0.0))) == []

    def test_prefix_is_ctrl(self):
        assert MetricsRegistry().metric_prefix() == "ctrl"


def test_standard_instrument_lint_entry_point():
    from repro.obs.registry import _lint_standard_instruments

    assert _lint_standard_instruments() == 0
