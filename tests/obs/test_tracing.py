"""Unit tests for spans, the tracer stack, and causal queries."""

import pytest

from repro.obs.tracing import DecisionProvenance, Span, Trace, Tracer
from repro.sim.engine import Engine


@pytest.fixture
def tracer(engine: Engine) -> Tracer:
    return Tracer(engine)


class TestSpan:
    def test_duration_and_dict(self):
        sp = Span(1, "work", "cat", 10.0, args={"k": "v"})
        sp.end = 12.5
        assert sp.duration == 2.5
        d = sp.as_dict()
        assert d["id"] == 1
        assert d["parent"] is None
        assert d["args"] == {"k": "v"}

    def test_zero_length_by_default(self):
        sp = Span(1, "tick", "", 3.0)
        assert sp.duration == 0.0


class TestTracerStack:
    def test_begin_end_records_engine_time(self, engine, tracer):
        sp = tracer.begin("outer")
        engine.schedule(5.0, lambda: None)
        engine.run_until(5.0)
        tracer.end(sp)
        assert sp.start == 0.0
        assert sp.end == 5.0

    def test_nesting_gives_parentage(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.id
        assert outer.parent_id is None

    def test_explicit_parent_overrides_stack(self, tracer):
        with tracer.span("open"):
            sp = tracer.begin("linked", parent=41)
            tracer.end(sp)
        assert sp.parent_id == 41

    def test_parent_accepts_span_object(self, tracer):
        a = tracer.begin("a")
        tracer.end(a)
        b = tracer.begin("b", parent=a)
        tracer.end(b)
        assert b.parent_id == a.id

    def test_current_id_tracks_innermost(self, tracer):
        assert tracer.current_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_id() == outer.id
        assert tracer.current_id() is None

    def test_instant_does_not_open_context(self, tracer):
        with tracer.span("outer") as outer:
            mark = tracer.instant("event")
            assert mark.parent_id == outer.id
            assert tracer.current_id() == outer.id

    def test_out_of_order_end_tolerated(self, tracer):
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(a)  # ended before its child
        tracer.end(b)
        assert tracer.current_id() is None

    def test_ids_are_unique_and_dense(self, tracer):
        spans = [tracer.instant(f"s{i}") for i in range(5)]
        assert [s.id for s in spans] == sorted({s.id for s in spans})


class TestTraceQueries:
    def _chain(self, tracer):
        scrape = tracer.instant("scrape")
        decide = tracer.instant("decide", parent=scrape)
        actuate = tracer.instant("actuate", parent=decide)
        return scrape, decide, actuate

    def test_get_and_len(self, tracer):
        scrape, _, _ = self._chain(tracer)
        trace = tracer.trace
        assert len(trace) == 3
        assert trace.get(scrape.id) is scrape
        assert trace.get(99) is None

    def test_by_name_and_children(self, tracer):
        scrape, decide, actuate = self._chain(tracer)
        trace = tracer.trace
        assert trace.by_name("decide") == [decide]
        assert trace.children(decide.id) == [actuate]

    def test_parent_chain_innermost_first(self, tracer):
        scrape, decide, actuate = self._chain(tracer)
        chain = tracer.trace.parent_chain(actuate)
        assert [s.name for s in chain] == ["actuate", "decide", "scrape"]

    def test_parent_chain_survives_cycles(self, tracer):
        a = tracer.instant("a")
        b = tracer.instant("b", parent=a)
        a.parent_id = b.id  # corrupt link
        chain = tracer.trace.parent_chain(b)
        assert [s.name for s in chain] == ["b", "a"]

    def test_roots(self, tracer):
        scrape, _, _ = self._chain(tracer)
        assert tracer.trace.roots() == [scrape]

    def test_provenance_for_filters_by_app(self, tracer):
        trace = tracer.trace
        for app in ("web", "web", "cache"):
            trace.provenance.append(DecisionProvenance(
                app=app, time=0.0, verdict="hold", action="none",
                error=None, output=None, gain_scale=None, terms=None,
                inputs={}, signal_age=None, stale_periods=0,
                safe_mode=False, deadband=0.0, clamped=False, weights={},
                target=None, replicas=None, lease_generation=None,
                scrape_span_id=None, span_id=None, active_faults=(),
                tuner_event=None,
            ))
        assert len(trace.provenance_for("web")) == 2
        assert len(trace.provenance_for("cache")) == 1

    def test_provenance_as_dict_round_trips(self):
        record = DecisionProvenance(
            app="web", time=10.0, verdict="actuated", action="grow",
            error=0.1, output=0.2, gain_scale=1.0, terms=(0.1, 0.05, 0.0),
            inputs={"app/web/latency": 0.07}, signal_age=0.0,
            stale_periods=0, safe_mode=False, deadband=0.02, clamped=True,
            weights={"cpu": 1.0}, target={"cpu": 2.0}, replicas=3,
            lease_generation=7, scrape_span_id=1, span_id=2,
            active_faults=(0, 3), tuner_event="oscillation",
        )
        d = record.as_dict()
        assert d["verdict"] == "actuated"
        assert d["terms"] == [0.1, 0.05, 0.0]
        assert d["active_faults"] == [0, 3]
        assert d["lease_generation"] == 7


class TestTrace:
    def test_add_indexes_by_id(self):
        trace = Trace()
        sp = Span(5, "x", "", 0.0)
        trace.add(sp)
        assert trace.get(5) is sp
