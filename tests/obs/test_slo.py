"""Unit tests for the SLO engine (specs, burn windows, alert lifecycle)."""

import pytest

from repro.obs.registry import MetricsRegistry, lint_names
from repro.obs.slo import SLOEngine, SLOSpec


class FakeCollector:
    """Minimal stand-in: the engine only reads scrape_interval/latest."""

    scrape_interval = 5.0

    def __init__(self):
        self.values: dict[str, float | None] = {}

    def latest(self, series: str):
        return self.values.get(series)


def make_spec(**overrides) -> SLOSpec:
    kwargs = dict(
        name="web_latency",
        series="app/web/latency",
        objective=0.05,
        comparator="le",
        target=0.9,
        fast_window=10.0,
        slow_window=40.0,
        burn_threshold=2.0,
        warmup=0.0,
        kind="latency",
    )
    kwargs.update(overrides)
    return SLOSpec(**kwargs)


class TestSLOSpec:
    def test_good_le_and_ge(self):
        le = make_spec(comparator="le", objective=1.0)
        assert le.good(1.0) and le.good(0.5) and not le.good(1.1)
        ge = make_spec(comparator="ge", objective=1.0)
        assert ge.good(1.0) and ge.good(2.0) and not ge.good(0.9)

    @pytest.mark.parametrize("overrides", [
        {"name": "Bad-Name"},
        {"name": "has/slash"},
        {"comparator": "lt"},
        {"target": 1.0},
        {"target": -0.1},
        {"fast_window": 0.0},
        {"fast_window": 600.0, "slow_window": 60.0},
        {"burn_threshold": 0.0},
        {"warmup": -1.0},
        {"kind": "nonsense"},
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(FakeCollector(), [make_spec(), make_spec()])


class TestEvaluation:
    def _engine(self, **overrides):
        collector = FakeCollector()
        engine = SLOEngine(collector, [make_spec(**overrides)])
        return collector, engine, engine.states["web_latency"]

    def test_warmup_ticks_skipped(self):
        collector, engine, state = self._engine(warmup=60.0)
        collector.values["app/web/latency"] = 1.0  # would be bad
        engine.on_scrape(55.0)
        assert state.observed_ticks == 0 and state.bad_ticks == 0
        engine.on_scrape(60.0)
        assert state.bad_ticks == 1

    def test_missing_sample_is_unobserved_not_bad(self):
        collector, engine, state = self._engine()
        engine.on_scrape(5.0)  # series never sampled
        assert state.missing_ticks == 1
        assert state.observed_ticks == 0
        assert state.attainment() == 1.0

    def test_attainment_and_budget_ledger(self):
        collector, engine, state = self._engine()
        for i, value in enumerate((0.01, 0.01, 0.2, 0.01)):
            collector.values["app/web/latency"] = value
            engine.on_scrape(5.0 * (i + 1))
        assert state.good_ticks == 3 and state.bad_ticks == 1
        summary = engine.summary()["web_latency"]
        assert summary["attainment"] == pytest.approx(0.75)
        assert summary["observed_s"] == pytest.approx(20.0)
        # target 0.9 → 10% error budget of 20 observed seconds.
        assert summary["budget_s"] == pytest.approx(2.0)
        assert summary["budget_spent_s"] == pytest.approx(5.0)
        assert summary["budget_remaining_s"] == pytest.approx(-3.0)
        assert summary["first_bad_at"] == 15.0

    def test_burn_fraction_uses_window_capacity(self):
        # fast window 10s at 5s ticks = capacity 2: one bad tick is a
        # 0.5 bad fraction even while the window is still filling —
        # never "1/1 = 100% bad".
        collector, engine, state = self._engine()
        collector.values["app/web/latency"] = 1.0
        engine.on_scrape(5.0)
        assert state.fast.bad_fraction() == pytest.approx(0.5)
        assert state.slow.bad_fraction() == pytest.approx(1 / 8)


class TestAlertLifecycle:
    def _run(self, engine, collector, values, start=5.0):
        now = start
        for value in values:
            collector.values["app/web/latency"] = value
            engine.on_scrape(now)
            now += 5.0
        return now

    def test_fires_only_when_both_windows_burn(self):
        collector = FakeCollector()
        engine = SLOEngine(collector, [make_spec()])
        state = engine.states["web_latency"]
        # One bad tick: fast burn (0.5/0.1)=5 fires, but the slow
        # window (1/8 → 1.25) holds the alert back.
        self._run(engine, collector, [1.0])
        assert not state.firing and state.alerts == []
        # A second consecutive bad tick pushes slow to 2/8 → burn 2.5.
        self._run(engine, collector, [1.0], start=10.0)
        assert state.firing
        assert len(state.alerts) == 1
        alert = state.alerts[0]
        assert alert.fired_at == 10.0 and alert.active
        assert alert.burn_fast >= 2.0 and alert.burn_slow >= 2.0

    def test_resolves_when_fast_window_clears(self):
        collector = FakeCollector()
        engine = SLOEngine(collector, [make_spec()])
        state = engine.states["web_latency"]
        now = self._run(engine, collector, [1.0, 1.0])  # fires at 10s
        assert state.firing
        # Good ticks age the bad ones out of the 10s fast window; the
        # slow window still burns but resolution follows fast only.
        now = self._run(engine, collector, [0.01, 0.01, 0.01], start=now)
        assert not state.firing
        assert state.alerts[0].resolved_at is not None
        # A fresh burst opens a second alert rather than reusing the old.
        self._run(engine, collector, [1.0, 1.0], start=now)
        assert len(state.alerts) == 2

    def test_alerts_listing_sorted_across_slos(self):
        collector = FakeCollector()
        engine = SLOEngine(collector, [
            make_spec(name="a", series="s/a"),
            make_spec(name="b", series="s/b"),
        ])
        collector.values = {"s/a": 1.0, "s/b": 1.0}
        for now in (5.0, 10.0):
            engine.on_scrape(now)
        alerts = engine.alerts()
        assert [a.slo for a in alerts] == ["a", "b"]
        assert all(a.fired_at == 10.0 for a in alerts)


class TestGaugeExport:
    def test_slo_gauges_registered_and_lint_clean(self):
        registry = MetricsRegistry()
        collector = FakeCollector()
        engine = SLOEngine(collector, [make_spec()], registry=registry)
        names = registry.names()
        assert {
            "slo/web_latency/attainment",
            "slo/web_latency/burn_fast",
            "slo/web_latency/burn_slow",
            "slo/web_latency/firing",
        } <= set(names)
        assert lint_names(list(registry.sample_metrics(0.0))) == []
        # Attainment starts optimistic; firing starts clear.
        out = registry.sample_metrics(0.0)
        assert out["slo/web_latency/attainment"] == 1.0
        assert out["slo/web_latency/firing"] == 0.0

    def test_gauges_track_state(self):
        registry = MetricsRegistry()
        collector = FakeCollector()
        engine = SLOEngine(collector, [make_spec()], registry=registry)
        collector.values["app/web/latency"] = 1.0
        for now in (5.0, 10.0):
            engine.on_scrape(now)
        out = registry.sample_metrics(10.0)
        assert out["slo/web_latency/firing"] == 1.0
        assert out["slo/web_latency/attainment"] == 0.0
        assert out["slo/web_latency/burn_fast"] >= 2.0
