"""Decision-provenance integration tests.

Every control-loop evaluation must leave an auditable record when
telemetry is on — including the decisions that did *not* actuate — and
turning telemetry on must never change what a seeded run does.
"""

from repro.cluster.resources import ResourceVector
from repro.control.manager import ControlLoopManager, ResilienceConfig
from repro.control.multiresource import AllocationBounds, MultiResourceController
from repro.control.pid import PIDGains
from repro.obs.telemetry import Telemetry
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace, NoisyTrace

BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def controller(*, bounds=BOUNDS, deadband=0.1, **kwargs):
    return MultiResourceController(
        PIDGains(kp=0.8, ki=0.08), bounds, deadband=deadband, **kwargs
    )


def deploy(engine, api, collector, *, rate=100.0, cpu=0.5, plo_target=0.05):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=20,
                                          net_bw=20),
        initial_replicas=1,
    )
    svc.plo = LatencyPLO(plo_target, window=20)
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    collector.start()
    return svc


def instrument(engine, api, collector, **manager_kwargs):
    """A telemetry-wired manager over the shared fixtures."""
    tel = Telemetry(engine)
    api.telemetry = tel
    collector.telemetry = tel
    collector.register_internal(tel)
    manager = ControlLoopManager(engine, collector, **manager_kwargs)
    manager.telemetry = tel
    return tel, manager


class TestActuatedProvenance:
    def test_actuation_links_back_to_scrape(self, engine, api, collector):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        tel, manager = instrument(engine, api, collector, interval=10.0)
        manager.register(svc, controller())
        manager.start()
        engine.run_until(300.0)

        trace = tel.trace
        actuated = [p for p in trace.provenance_for("svc")
                    if p.verdict == "actuated"]
        assert actuated, "starved service never actuated"
        for record in actuated:
            assert record.action in ("grow", "reclaim")
            assert record.scrape_span_id is not None
            decide = trace.get(record.span_id)
            assert decide.name == "decide"
            assert decide.parent_id == record.scrape_span_id
            assert trace.get(record.scrape_span_id).name == "scrape"
            actuates = [s for s in trace.children(decide.id)
                        if s.name == "actuate"]
            assert actuates, "actuated decision has no actuate span"

    def test_pid_terms_and_inputs_snapshot(self, engine, api, collector):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        tel, manager = instrument(engine, api, collector, interval=10.0)
        manager.register(svc, controller())
        manager.start()
        engine.run_until(120.0)

        record = next(p for p in tel.trace.provenance_for("svc")
                      if p.verdict == "actuated")
        assert record.terms is not None and len(record.terms) == 3
        assert record.error is not None
        assert "app/svc/latency" in record.inputs
        assert record.signal_age is not None and record.signal_age >= 0.0
        assert record.replicas == 1
        assert record.lease_generation is None

    def test_decisions_counted_and_latency_observed(self, engine, api,
                                                    collector):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        tel, manager = instrument(engine, api, collector, interval=10.0)
        manager.register(svc, controller())
        manager.start()
        engine.run_until(200.0)
        assert tel.decisions.value >= 1
        assert tel.actuations.value >= 1
        assert tel.reaction_latency.count >= 1
        # ctrl/* series land in the ordinary store via the internal source.
        assert collector.latest("ctrl/decisions_total") >= 1


class TestSafeModeProvenance:
    def test_entry_freezes_at_last_good(self, engine, api, collector):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        tel, manager = instrument(
            engine, api, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=3),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(100.0)
        collector.stop()  # scrape pipeline goes dark; signal goes stale
        engine.run_until(250.0)

        records = tel.trace.provenance_for("svc")
        entries = [p for p in records if p.verdict == "safe-mode-entry"]
        assert len(entries) == 1
        entry = entries[0]
        assert entry.action == "freeze"
        assert entry.safe_mode is True
        assert entry.target is not None  # the frozen last-good allocation
        assert entry.stale_periods >= 3
        # Subsequent stale periods audit as safe-mode holds.
        after = [p for p in records if p.time > entry.time]
        assert after and all(p.verdict == "safe-mode-hold" for p in after)
        assert tel.safe_mode_entries.value == 1.0

    def test_stale_skip_before_threshold(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        tel, manager = instrument(
            engine, api, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=50),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(100.0)
        collector.stop()
        engine.run_until(200.0)
        verdicts = {p.verdict for p in tel.trace.provenance_for("svc")
                    if p.time > 130.0}
        assert verdicts == {"stale-skip"}


class TestSuppressedDecisions:
    def test_deadband_hold_is_audited(self, engine, api, collector):
        svc = deploy(engine, api, collector, rate=50.0, cpu=1.0,
                     plo_target=0.05)
        tel, manager = instrument(engine, api, collector, interval=10.0)
        # A huge deadband suppresses every correction.
        manager.register(svc, controller(deadband=100.0))
        manager.start()
        engine.run_until(200.0)

        records = [p for p in tel.trace.provenance_for("svc")
                   if p.verdict in ("deadband", "hold", "actuated")]
        assert records
        deadbands = [p for p in records if p.verdict == "deadband"]
        assert deadbands, "no deadband-suppressed decision audited"
        for record in deadbands:
            assert record.action == "hold"
            assert record.deadband == 100.0
        # Suppressed decisions never produced actuate spans.
        assert not [s for s in tel.trace.by_name("actuate")
                    if s.args.get("app") == "svc"]

    def test_clamped_decision_is_flagged(self, engine, api, collector):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        tel, manager = instrument(engine, api, collector, interval=10.0)
        # Ceiling barely above the starting point: growth clamps at once.
        tight = AllocationBounds(
            minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5,
                                   net_bw=5),
            maximum=ResourceVector(cpu=0.6, memory=1.5, disk_bw=25,
                                   net_bw=25),
        )
        manager.register(svc, controller(bounds=tight))
        manager.start()
        engine.run_until(300.0)

        clamped = [p for p in tel.trace.provenance_for("svc") if p.clamped]
        assert clamped, "no clamped decision audited"
        # Once pinned at the ceiling the clamp suppresses actuation
        # entirely; those records are clamped holds.
        assert any(p.verdict == "hold" for p in clamped)


class TestBitIdentity:
    @staticmethod
    def _run(telemetry: bool):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=3),
            config=PlatformConfig(seed=7, telemetry=telemetry),
            policy="adaptive",
        )
        # Stochastic trace + stochastic metric faults: any extra RNG
        # draw from telemetry would shift both streams.
        platform.metrics_faults.outlier_probability = 0.05
        platform.metrics_faults.drop_scrape_probability = 0.02
        platform.deploy_microservice(
            "svc",
            trace=NoisyTrace(ConstantTrace(80.0), rel_std=0.3,
                             horizon=600.0,
                             rng=platform.rng.stream("trace/svc")),
            demands=DEMANDS,
            allocation=ResourceVector(cpu=0.6, memory=1, disk_bw=20,
                                      net_bw=20),
            plo=LatencyPLO(0.05, window=30),
        )
        platform.run(600.0)
        return platform

    def test_seeded_run_identical_with_telemetry_on(self):
        off = self._run(telemetry=False)
        on = self._run(telemetry=True)
        assert off.engine.events_executed == on.engine.events_executed
        for metric in ("app/svc/latency", "app/svc/alloc/cpu",
                       "app/svc/usage/cpu", "control/svc/output"):
            assert (off.collector.series(metric).to_lists()
                    == on.collector.series(metric).to_lists()), metric
        # And the enabled run actually recorded telemetry.
        assert len(on.telemetry.trace) > 0
        assert on.telemetry.trace.provenance


class TestPlatformWiring:
    def test_telemetry_reaches_all_components(self):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=3),
            config=PlatformConfig(seed=1, telemetry=True),
            policy="adaptive",
        )
        tel = platform.telemetry
        assert tel is not None
        assert platform.api.telemetry is tel
        assert platform.collector.telemetry is tel
        assert platform.metrics_faults.telemetry is tel
        for policy in platform.replica_policies:
            manager = getattr(policy, "manager", None)
            if manager is not None:
                assert manager.telemetry is tel

    def test_telemetry_off_by_default(self):
        platform = EvolvePlatform(cluster_spec=ClusterSpec(node_count=2))
        assert platform.telemetry is None
        assert platform.collector.telemetry is None

    def test_engine_event_counter_synced_at_scrape(self):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=2),
            config=PlatformConfig(seed=1, telemetry=True),
        )
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(10.0), demands=DEMANDS,
            allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=10,
                                      net_bw=10),
            plo=LatencyPLO(0.1, window=30),
        )
        platform.run(120.0)
        exported = platform.collector.latest("ctrl/engine_events_total")
        assert exported is not None
        assert 0 < exported <= platform.engine.events_executed
