"""Flight-recorder tests: RunReport assembly, ledgers, instrumentation.

Uses the preset scenarios (:mod:`repro.platform.presets`) at shortened
horizons — the same platforms ``repro report`` and R-T12 run — so the
report is exercised against real admission/brownout/data-plane state,
not mocks.
"""

import json

import pytest

from repro.obs.recorder import (
    RUN_REPORT_SCHEMA,
    build_run_report,
    write_run_report,
)
from repro.platform.presets import PRESETS, build_scenario


@pytest.fixture(scope="module")
def overload_report():
    platform, _ = build_scenario("overload", duration=420.0)
    platform.run(420.0)
    return platform, build_run_report(platform)


@pytest.fixture(scope="module")
def datafault_report():
    platform, _ = build_scenario("data-fault", duration=420.0)
    platform.run(420.0)
    return platform, build_run_report(platform)


class TestPresets:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope")

    def test_presets_wire_slo_engine_and_telemetry(self):
        for name in PRESETS:
            platform, duration = build_scenario(name)
            assert duration > 0
            assert platform.telemetry is not None, name
            assert platform.slo_engine is not None, name
            assert platform.slo_engine.specs, name


class TestRunReportSchema:
    def test_top_level_schema(self, overload_report):
        _, report = overload_report
        data = report.as_dict()
        assert data["schema"] == RUN_REPORT_SCHEMA
        assert set(data) == {
            "schema", "meta", "slos", "slo_summary", "alert_timeline",
            "ledgers", "critical_paths",
        }
        meta = data["meta"]
        assert meta["seed"] == PRESETS["overload"].seed
        assert meta["duration"] == pytest.approx(420.0)
        assert meta["telemetry"] is True
        assert "web" in meta["apps"]
        assert meta["slo_count"] == 3

    def test_report_is_json_serializable(self, overload_report):
        _, report = overload_report
        round_trip = json.loads(report.to_json())
        assert round_trip == report.as_dict()

    def test_write_run_report(self, overload_report, tmp_path):
        _, report = overload_report
        path = tmp_path / "report.json"
        write_run_report(report, str(path))
        assert json.loads(path.read_text()) == report.as_dict()


class TestOverloadReport:
    def test_shed_and_brownout_budgets_burn(self, overload_report):
        _, report = overload_report
        assert report.slos["shed_free"]["budget_spent_s"] > 0
        assert report.slos["brownout_free"]["budget_spent_s"] > 0
        assert report.overall_attainment() < 1.0

    def test_alert_timeline_merges_slos_and_faults(self, overload_report):
        _, report = overload_report
        timeline = report.as_dict()["alert_timeline"]
        types = {entry["type"] for entry in timeline}
        assert types == {"slo", "fault"}
        starts = [entry["start"] for entry in timeline]
        assert starts == sorted(starts)
        assert report.alerts, "no SLO alert in an overloaded run"

    def test_resilience_ledgers_conserve(self, overload_report):
        _, report = overload_report
        ledgers = report.ledgers
        assert {"admission", "backpressure", "brownout"} <= set(ledgers)
        assert report.ledgers_ok()
        adm = ledgers["admission"]
        assert adm["shed_total"] > 0
        assert adm["shed_total"] == (
            adm["rejected_pending"] + adm["evicted_running"]
        )

    def test_critical_paths_reach_back_to_scrapes(self, overload_report):
        _, report = overload_report
        paths = report.as_dict()["critical_paths"]
        assert paths
        for p in paths:
            assert p["path"][0]["name"] == "scrape"
            assert p["path"][-1]["name"] == "actuate"
            assert p["latency"] >= 0.0

    def test_sched_instrumentation_series_live(self, overload_report):
        platform, _ = overload_report
        latest = platform.collector.latest
        assert latest("ctrl/sched/shed_total") > 0
        assert latest("ctrl/sched/shed/best_effort") > 0
        assert latest("ctrl/sched/shed_pending_age/count") > 0
        assert latest("ctrl/sched/brownout/entries_total") > 0
        # Shed decisions appear as spans causally under admit cycles.
        trace = platform.telemetry.trace
        sheds = trace.by_name("shed")
        assert sheds
        admits = {s.id for s in trace.by_name("admit")}
        assert all(s.parent_id in admits for s in sheds)


class TestDataFaultReport:
    def test_dataplane_ledgers_conserve(self, datafault_report):
        _, report = datafault_report
        ledgers = report.ledgers
        assert {"dataplane", "streams", "storage"} <= set(ledgers)
        assert report.ledgers_ok()
        assert "t11-job" in ledgers["dataplane"]["jobs"]
        assert "t11-stream" in ledgers["streams"]["streams"]

    def test_fault_timeline_attributes_domains(self, datafault_report):
        _, report = datafault_report
        faults = [
            e for e in report.as_dict()["alert_timeline"]
            if e["type"] == "fault"
        ]
        assert faults, "harsh schedule produced no fault episodes"

    def test_dp_and_store_instrumentation_series_live(
        self, datafault_report
    ):
        platform, _ = datafault_report
        latest = platform.collector.latest
        assert latest("ctrl/dp/executor_losses_total") > 0
        assert latest("ctrl/dp/stream/checkpoints_total") > 0
        assert latest("ctrl/store/repair_traffic_mb") > 0
        trace = platform.telemetry.trace
        assert trace.by_name("executor_loss")
        assert trace.by_name("stream_checkpoint")
        assert trace.by_name("repair_cycle")
