"""Kitchen-sink soak: every subsystem enabled at once, invariants hold.

Heterogeneous zoned cluster, all three worlds, adaptive policy with
feedforward, preemption, tenant quotas, and an armed chaos monkey — six
simulated hours. The assertions are global invariants and liveness, not
tuned numbers: accounting never drifts, quotas are never exceeded,
terminal pods hold nothing, batch/HPC work completes, and services end
the run healthy.
"""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace, NoisyTrace

HOURS = 3600.0


def build_everything() -> EvolvePlatform:
    spec = ClusterSpec(
        groups=(
            NodeGroup("worker", 4,
                      ResourceVector(cpu=16, memory=64, disk_bw=500,
                                     net_bw=1250)),
            NodeGroup("fpga", 2,
                      ResourceVector(cpu=8, memory=32, disk_bw=200,
                                     net_bw=1250),
                      labels={"accelerator": "fpga"}),
        ),
        zones=2,
    )
    platform = EvolvePlatform(
        cluster_spec=spec,
        config=PlatformConfig(seed=99),
        scheduler="converged",
        scheduler_kwargs={"preemption": True},
        policy="adaptive",
        policy_kwargs={"feedforward": True},
    )
    platform.set_tenant_quota(
        "web", ResourceVector(cpu=20, memory=60, disk_bw=400, net_bw=400)
    )
    spread_blocks(platform.store, "lake", total_mb=10_000, block_mb=100,
                  nodes=list(platform.cluster.nodes)[:3])

    for i in range(2):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=NoisyTrace(
                DiurnalTrace(base=120, amplitude=80, period=2 * HOURS,
                             phase=i * HOURS),
                rel_std=0.1, horizon=6 * HOURS,
                rng=platform.rng.stream(f"noise/{i}"),
            ),
            demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.1,
                                   net_mb=0.05, base_latency=0.01),
            allocation=ResourceVector(cpu=1, memory=2, disk_bw=30, net_bw=30),
            plo=LatencyPLO(0.06, window=30),
            labels={"tenant": "web"},
        )
    for i in range(3):
        platform.submit_bigdata(
            f"etl-{i}",
            stages=[
                Stage("scan", 400.0, input_mb=10_000),
                Stage("kernel", 2500.0, deps=("scan",), accel_speedup=4.0),
            ],
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=120, net_bw=80),
            executors=3, dataset="lake", accelerator="fpga",
            delay=i * 1.5 * HOURS, labels={"tenant": "data"},
        )
    for i in range(2):
        platform.submit_hpc(
            f"sim-{i}", ranks=3, duration=0.5 * HOURS,
            allocation=ResourceVector(cpu=6, memory=10, disk_bw=5, net_bw=120),
            comm_fraction=0.3, zone_penalty=0.5, checkpoint_interval=300.0,
            delay=(0.5 + 2 * i) * HOURS, labels={"tenant": "hpc"},
        )
    platform.enable_chaos(mtbf=2 * HOURS, repair_time=300.0)
    return platform


@pytest.mark.slow
def test_soak_six_hours():
    platform = build_everything()
    platform.run(6 * HOURS)

    # 1. Accounting invariants survived everything.
    platform.cluster.verify_invariants()

    # 2. Quotas were never exceeded.
    usage = platform.quotas.usage("web", platform.cluster.pods.values())
    limit = platform.quotas.limit("web")
    assert usage.fits_within(limit)

    # 3. Terminal pods hold nothing.
    for pod in platform.cluster.pods.values():
        if pod.terminal:
            assert pod.usage.is_zero()

    # 4. Liveness: all batch and HPC work completed despite chaos,
    #    preemption, and co-location.
    result = platform.result()
    for name in ("etl-0", "etl-1", "etl-2", "sim-0", "sim-1"):
        assert result.makespans[name] is not None, f"{name} never finished"

    # 5. Services end the run running and healthy.
    for i in range(2):
        svc = platform.apps[f"svc-{i}"]
        assert svc.running_pods()
        assert svc.current_latency < 0.06 * 3
        assert result.violation_fraction(f"svc-{i}") < 0.30

    # 6. The run actually exercised the machinery.
    assert platform.injector.failures, "chaos never struck"
    assert platform.collector.scrapes > 4000
    # Accelerated kernels actually used the FPGA preference: jobs finish
    # well under the un-accelerated bound (2900 cpu-s / 6 cores ≈ 480 s
    # plus scan; un-accelerated kernel alone would be ~420 s of the
    # total, accelerated ~105 s).
    assert result.makespans["etl-0"] < 600.0


@pytest.mark.slow
def test_soak_is_deterministic():
    a = build_everything()
    a.run(2 * HOURS)
    b = build_everything()
    b.run(2 * HOURS)
    ra, rb = a.result(), b.result()
    assert ra.total_violation_fraction() == rb.total_violation_fraction()
    assert ra.makespans == rb.makespans
    assert [f.time for f in a.injector.failures] == \
           [f.time for f in b.injector.failures]
