"""Integration tests: the headline result shapes, at small scale.

Each test runs the full platform (scheduler + metrics + policy + monitor)
and asserts the *direction* the paper's evaluation reports: the adaptive
multi-resource controller beats the baselines on violations, reclaims
over-provisioned capacity, and fixes non-CPU bottlenecks the CPU-only
baseline cannot.
"""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace, StepTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
#: Sized for ~50 rps; the diurnal peak needs ~3 cores.
LEAN_ALLOC = ResourceVector(cpu=0.5, memory=1, disk_bw=25, net_bw=25)
TRACE = DiurnalTrace(base=150, amplitude=120, period=1200)
PLO = LatencyPLO(0.05, window=30)
HOURS = 3600.0


def run_policy(policy, *, duration=1.5 * HOURS, trace=TRACE, demands=DEMANDS,
               allocation=LEAN_ALLOC, policy_kwargs=None):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=7),
        scheduler="converged",
        policy=policy,
        policy_kwargs=policy_kwargs,
    )
    platform.deploy_microservice(
        "svc", trace=trace, demands=demands, allocation=allocation,
        plo=LatencyPLO(0.05, window=30),
    )
    platform.run(duration)
    return platform.result()


@pytest.mark.slow
def test_adaptive_beats_static_on_violations():
    static = run_policy("static")
    adaptive = run_policy("adaptive")
    assert static.violation_fraction("svc") > 0.2
    assert adaptive.violation_fraction("svc") < static.violation_fraction("svc") / 3


@pytest.mark.slow
def test_adaptive_beats_hpa_on_io_bottleneck():
    """An I/O-bound violation: HPA sees low CPU utilization and does
    nothing; the multi-resource controller grows disk bandwidth."""
    io_demands = ServiceDemands(
        cpu_seconds=0.002, disk_mb=1.0, base_latency=0.01
    )
    alloc = ResourceVector(cpu=2, memory=2, disk_bw=40, net_bw=50)  # 40 rps disk cap
    trace = StepTrace([(0, 80.0)])
    hpa = run_policy("hpa", trace=trace, demands=io_demands, allocation=alloc,
                     duration=HOURS)
    adaptive = run_policy("adaptive", trace=trace, demands=io_demands,
                          allocation=alloc, duration=HOURS)
    assert hpa.violation_fraction("svc") > 0.8
    assert adaptive.violation_fraction("svc") < 0.3


@pytest.mark.slow
def test_adaptive_reclaims_overprovisioned_capacity():
    fat = ResourceVector(cpu=6, memory=16, disk_bw=300, net_bw=300)
    quiet = StepTrace([(0, 30.0)])
    static = run_policy("static", trace=quiet, allocation=fat, duration=HOURS)
    adaptive = run_policy("adaptive", trace=quiet, allocation=fat, duration=HOURS)
    # Same usage, but the adaptive policy shrinks allocations, so its
    # allocated share of the cluster ends much smaller.
    assert adaptive.utilization.overall_alloc < static.utilization.overall_alloc / 2


@pytest.mark.slow
def test_multi_resource_fixes_what_cpu_only_cannot():
    io_demands = ServiceDemands(cpu_seconds=0.002, disk_mb=1.0, base_latency=0.01)
    alloc = ResourceVector(cpu=2, memory=2, disk_bw=40, net_bw=50)
    trace = StepTrace([(0, 80.0)])
    cpu_only = run_policy(
        "adaptive", trace=trace, demands=io_demands, allocation=alloc,
        duration=HOURS, policy_kwargs={"dimensions": ("cpu",), "horizontal": False},
    )
    multi = run_policy(
        "adaptive", trace=trace, demands=io_demands, allocation=alloc,
        duration=HOURS, policy_kwargs={"horizontal": False},
    )
    assert multi.violation_fraction("svc") < cpu_only.violation_fraction("svc") / 2


def test_same_seed_same_results():
    a = run_policy("adaptive", duration=900.0)
    b = run_policy("adaptive", duration=900.0)
    assert a.violation_fraction("svc") == b.violation_fraction("svc")
    assert a.utilization.mean_usage == b.utilization.mean_usage
