"""Integration tests: the three worlds sharing one cluster.

Asserts the convergence thesis at small scale: a shared cluster with the
converged scheduler completes HPC gangs sooner and runs big-data jobs
faster (locality) than the statically-siloed deployment of the same
hardware, without wrecking microservice PLOs.
"""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def build_mixed_world(scheduler: str) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=6),
        config=PlatformConfig(seed=11),
        scheduler=scheduler,
        policy="adaptive",
    )
    platform.deploy_microservice(
        "frontend", trace=ConstantTrace(150), demands=DEMANDS,
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=30, net_bw=30),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.submit_bigdata(
        "analytics",
        stages=[
            Stage("map", 2000.0, input_mb=4000),
            Stage("reduce", 500.0, deps=("map",)),
        ],
        allocation=ResourceVector(cpu=3, memory=6, disk_bw=120, net_bw=120),
        executors=4,
    )
    # Two sequential HPC gangs that need 4 × 8 cpu each.
    for i, delay in enumerate((30.0, 300.0)):
        platform.submit_hpc(
            f"sim-{i}", ranks=4, duration=240.0,
            allocation=ResourceVector(cpu=8, memory=8, disk_bw=5, net_bw=100),
            delay=delay,
        )
    return platform


@pytest.mark.slow
def test_converged_beats_siloed_on_hpc_wait_and_makespan():
    results = {}
    for scheduler in ("converged", "siloed"):
        platform = build_mixed_world(scheduler)
        platform.run(3600.0)
        results[scheduler] = platform.result()

    conv, silo = results["converged"], results["siloed"]
    # Every job finishes under the converged scheduler.
    assert all(m is not None for m in conv.makespans.values())
    # HPC gangs need 4×8=32 cores; a 2-node silo (≤30 allocatable) can
    # never admit them, while the shared cluster runs them immediately.
    assert silo.makespans["sim-0"] is None
    assert conv.hpc_waits["sim-0"] < 120.0
    # Analytics also finishes faster with the whole cluster available.
    if silo.makespans["analytics"] is not None:
        assert conv.makespans["analytics"] <= silo.makespans["analytics"] * 1.5


@pytest.mark.slow
def test_mixed_workloads_coexist_without_plo_collapse():
    platform = build_mixed_world("converged")
    platform.run(3600.0)
    result = platform.result()
    # The frontend keeps its PLO most of the time despite batch churn.
    assert result.violation_fraction("frontend") < 0.25


@pytest.mark.slow
def test_locality_scheduling_speeds_up_scans():
    """An I/O-bound scan over a dataset held on two nodes: the converged
    scheduler places executors next to the blocks (disk-speed reads), the
    locality-blind kube scheduler spreads them (network-speed reads)."""

    def run(scheduler: str):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=4),
            config=PlatformConfig(seed=3),
            scheduler=scheduler,
        )
        spread_blocks(
            platform.store, "logs", total_mb=8000, block_mb=100,
            nodes=["node-00", "node-01"],
        )
        job = platform.submit_bigdata(
            "scan", stages=[Stage("scan", 100.0, input_mb=8000)],
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=200, net_bw=60),
            executors=2, dataset="logs",
        )
        platform.run(3600.0)
        return job.makespan()

    local = run("converged")
    blind = run("kube")
    assert local is not None and blind is not None
    assert local < blind * 0.75
