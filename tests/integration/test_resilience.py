"""Integration tests: the platform under failures and preemption.

The recovery path under test: node crash → pods evicted → application
self-healing resubmits → scheduler re-places → controller re-converges.
"""

import pytest

from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def build(**kwargs):
    kwargs.setdefault("cluster_spec", ClusterSpec(node_count=5))
    kwargs.setdefault("config", PlatformConfig(seed=19))
    return EvolvePlatform(**kwargs)


@pytest.mark.slow
def test_service_survives_single_node_crash():
    platform = build(policy="adaptive")
    svc = platform.deploy_microservice(
        "svc", trace=ConstantTrace(200), demands=DEMANDS,
        allocation=ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30), replicas=3,
    )
    platform.run(600.0)
    victim_node = svc.running_pods()[0].node_name
    platform.injector.fail_node(victim_node)
    platform.run(300.0)
    # Self-healing restored the replica count on surviving nodes.
    assert len(svc.running_pods()) == 3
    assert all(p.node_name != victim_node for p in svc.running_pods())
    assert svc.replacements >= 1
    assert svc.current_latency < 0.1


@pytest.mark.slow
def test_batch_job_finishes_despite_chaos():
    platform = build()
    job = platform.submit_bigdata(
        "job", stages=[Stage("map", 2000.0)],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=50),
        executors=3,
    )
    platform.enable_chaos(mtbf=400.0, repair_time=120.0)
    platform.run(3 * 3600.0)
    assert job.done
    assert platform.injector.failures  # chaos actually struck


@pytest.mark.slow
def test_violations_bounded_under_chaos():
    def run(chaos: bool):
        platform = build(policy="adaptive")
        platform.deploy_microservice(
            "svc", trace=ConstantTrace(150), demands=DEMANDS,
            allocation=ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
            plo=LatencyPLO(0.05, window=30), replicas=3,
        )
        if chaos:
            platform.enable_chaos(mtbf=900.0, repair_time=180.0)
        platform.run(2 * 3600.0)
        return platform.result().violation_fraction("svc")

    calm = run(False)
    stormy = run(True)
    # Failures cost something, but the platform absorbs most of it.
    assert stormy < 0.25
    assert stormy >= calm - 1e-9


@pytest.mark.slow
def test_hpc_gang_preempts_batch_end_to_end():
    platform = build(
        scheduler="converged",
        scheduler_kwargs={"preemption": True},
        cluster_spec=ClusterSpec(node_count=3),
    )
    job = platform.submit_bigdata(
        "filler", stages=[Stage("map", 100_000.0)],
        allocation=ResourceVector(cpu=12, memory=8, disk_bw=50, net_bw=50),
        executors=3,  # fills all three nodes
    )
    platform.run(120.0)
    assert len(job.running_pods()) == 3
    hpc = platform.submit_hpc(
        "urgent", ranks=3, duration=300.0,
        allocation=ResourceVector(cpu=10, memory=8, disk_bw=5, net_bw=50),
    )
    platform.run(1200.0)
    assert hpc.done
    assert platform.scheduler.preemptions >= 3
    # The batch job lost executors but self-healed and keeps running.
    assert not job.done
    assert job.running_pods()


@pytest.mark.slow
def test_safe_mode_engages_and_releases_on_scrape_loss():
    """Metrics pipeline goes dark → the controller freezes at the last
    known-good allocation (safe mode) and releases once scrapes resume."""
    platform = build(policy="adaptive")
    platform.deploy_microservice(
        "svc", trace=ConstantTrace(150), demands=DEMANDS,
        allocation=ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30), replicas=3,
    )
    platform.run(300.0)
    manager = platform.policy.manager
    assert manager.resilience_stats()["safe_mode_entries"] == 0
    platform.metrics_faults.drop_scrapes(platform.engine.now, 120.0)
    platform.run(120.0)
    stats = manager.resilience_stats()
    assert stats["safe_mode_entries"] >= 1
    platform.run(180.0)
    stats = manager.resilience_stats()
    assert stats["safe_mode_exits"] >= 1
    series = platform.collector.series("control/svc/safe_mode")
    assert max(series.to_lists()[1]) == 1.0
    assert series.last() == 0.0  # released, not stuck


@pytest.mark.slow
def test_degradation_recovers_end_to_end():
    """Partial capacity loss: evicted pods respawn elsewhere and the
    degraded node returns to full allocatable after restore."""
    platform = build(policy="adaptive")
    svc = platform.deploy_microservice(
        "svc", trace=ConstantTrace(200), demands=DEMANDS,
        allocation=ResourceVector(cpu=4, memory=2, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30), replicas=4,
    )
    platform.run(600.0)
    victim = svc.running_pods()[0].node_name
    before = platform.cluster.get_node(victim).allocatable
    platform.degrader.degrade_node(victim, 0.3)
    platform.run(300.0)
    # The policy may also scale horizontally; the point is no replica
    # stays lost after the partial capacity loss.
    assert len(svc.running_pods()) >= 4
    platform.degrader.restore_node(victim)
    platform.run(60.0)
    assert platform.cluster.get_node(victim).allocatable == before
    episode = platform.fault_log.by_kind("node-degradation")[0]
    assert not episode.active


def test_failed_node_pods_marked_evicted():
    platform = build()
    platform.deploy_microservice(
        "svc", trace=ConstantTrace(10), demands=DEMANDS,
        allocation=ResourceVector(cpu=1, memory=1), managed=False, replicas=2,
    )
    platform.run(60.0)
    victim = platform.apps["svc"].running_pods()[0]
    platform.injector.fail_node(victim.node_name)
    assert victim.phase == PodPhase.EVICTED
