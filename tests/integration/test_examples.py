"""Smoke tests: every example script runs to completion and reports.

Examples are the first thing a new user runs; a broken one is a broken
front door. Each test executes the example's ``main()`` and checks the
report reaches stdout. Durations are what the scripts ship with, so
these double as mini end-to-end runs.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in ("quickstart", "policy_comparison", "converged_cluster",
                 "bottleneck_shift", "failure_recovery", "multi_tenant"):
        sys.modules.pop(name, None)


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "PLO violation fraction" in out
    assert "final per-replica alloc" in out


@pytest.mark.slow
def test_policy_comparison(capsys):
    out = run_example("policy_comparison", capsys)
    for policy in ("static", "hpa", "vpa", "adaptive"):
        assert policy in out


@pytest.mark.slow
def test_converged_cluster(capsys):
    out = run_example("converged_cluster", capsys)
    assert "siloed" in out and "converged" in out


@pytest.mark.slow
def test_bottleneck_shift(capsys):
    out = run_example("bottleneck_shift", capsys)
    assert "multi-resource" in out
    assert "CPU-only ablation" in out


@pytest.mark.slow
def test_failure_recovery(capsys):
    out = run_example("failure_recovery", capsys)
    assert "node failures injected" in out
    assert "service replacements" in out


@pytest.mark.slow
def test_multi_tenant(capsys):
    out = run_example("multi_tenant", capsys)
    assert "with quotas" in out
    assert "fairness" in out


def test_experiment_json_is_loadable():
    from repro.platform.loader import platform_from_json
    platform, duration = platform_from_json(str(EXAMPLES_DIR / "experiment.json"))
    assert duration > 0
    assert platform.apps
