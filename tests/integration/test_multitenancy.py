"""Integration tests: tenant quotas on the full platform."""

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.platform.loader import platform_from_dict
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def test_quota_caps_tenant_scaleout():
    """A capped tenant's autoscaler hits the quota wall; an uncapped
    tenant on the same cluster scales freely."""
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=3),
        policy="adaptive",
    )
    platform.set_tenant_quota(
        "capped", ResourceVector(cpu=2, memory=8, disk_bw=100, net_bw=100)
    )
    for tenant in ("capped", "free"):
        platform.deploy_microservice(
            f"svc-{tenant}",
            trace=ConstantTrace(400),  # needs ~4 cores
            demands=DEMANDS,
            allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=20, net_bw=20),
            plo=LatencyPLO(0.05, window=30),
            labels={"tenant": tenant},
        )
    platform.run(2 * 3600.0)

    capped_alloc = platform.quotas.usage(
        "capped", platform.cluster.pods.values()
    )
    assert capped_alloc.cpu <= 2.0 + 1e-6
    result = platform.result()
    # The capped tenant suffers for its cap; the free one converges.
    assert result.violation_fraction("svc-capped") > 0.5
    assert result.violation_fraction("svc-free") < 0.15
    assert platform.quotas.denials > 0


def test_quota_isolation_protects_neighbours():
    """Without quotas a greedy tenant can consume the cluster; with them
    the neighbour keeps its resources."""

    def run(with_quota: bool):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=3),
            config=PlatformConfig(seed=8),
            policy="adaptive",
        )
        if with_quota:
            platform.set_tenant_quota(
                "greedy", ResourceVector(cpu=8, memory=16, disk_bw=200,
                                         net_bw=200)
            )
        platform.deploy_microservice(
            "greedy-svc",
            trace=ConstantTrace(2500),  # wants ~25 cores; cluster has 45
            demands=DEMANDS,
            allocation=ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
            plo=LatencyPLO(0.05, window=30),
            labels={"tenant": "greedy"},
        )
        platform.run(3600.0)
        return platform.quotas.usage(
            "greedy", platform.cluster.pods.values()
        ).cpu

    unlimited = run(False)
    limited = run(True)
    assert limited <= 8.0 + 1e-6
    assert unlimited > limited * 1.5


def test_quotas_via_loader():
    config = {
        "duration": 300,
        "cluster": {"nodes": 3},
        "quotas": {"acme": {"cpu": 1, "memory": 4, "disk_bw": 50, "net_bw": 50}},
        "services": [
            {
                "name": "svc",
                "trace": {"kind": "constant", "value": 10},
                "demands": {"cpu_seconds": 0.01},
                "allocation": {"cpu": 2, "memory": 1, "disk_bw": 10,
                               "net_bw": 10},
                "labels": {"tenant": "acme"},
                "managed": False,
            }
        ],
    }
    platform, duration = platform_from_dict(config)
    platform.run(duration)
    # The 2-cpu pod exceeds the 1-cpu quota: never bound.
    assert platform.apps["svc"].running_pods() == []
    assert platform.quotas.denials > 0
