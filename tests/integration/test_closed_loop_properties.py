"""Property-based closed-loop tests: random workloads, global invariants.

Hypothesis generates random service shapes (demands, loads, targets) and
runs the full platform for 20 simulated minutes under the adaptive
policy. Whatever the draw, the platform must maintain its structural
invariants — this is the whole-system analogue of the per-module
property tests.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace, StepTrace


service_shapes = st.builds(
    dict,
    rate=st.floats(5.0, 400.0),
    step_factor=st.floats(0.25, 4.0),
    cpu_seconds=st.floats(0.001, 0.03),
    disk_mb=st.floats(0.0, 1.0),
    net_mb=st.floats(0.0, 0.5),
    target=st.floats(0.02, 0.3),
    cpu=st.floats(0.2, 4.0),
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(shape=service_shapes)
def test_random_service_keeps_invariants(shape):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=1),
        policy="adaptive",
    )
    platform.deploy_microservice(
        "svc",
        trace=StepTrace([(0.0, shape["rate"]),
                         (600.0, shape["rate"] * shape["step_factor"])]),
        demands=ServiceDemands(
            cpu_seconds=shape["cpu_seconds"],
            disk_mb=shape["disk_mb"],
            net_mb=shape["net_mb"],
            base_latency=0.01,
        ),
        allocation=ResourceVector(cpu=shape["cpu"], memory=2, disk_bw=40,
                                  net_bw=40),
        plo=LatencyPLO(shape["target"], window=30),
    )
    platform.run(1200.0)

    # Structural invariants, whatever the workload drew.
    platform.cluster.verify_invariants()
    bounds = platform.bounds
    for pod in platform.apps["svc"].running_pods():
        assert pod.usage.fits_within(pod.allocation, tolerance=1e-6)
        assert bounds.minimum.fits_within(pod.allocation, tolerance=1e-6)
        assert pod.allocation.fits_within(bounds.maximum, tolerance=1e-6)
    # Metrics stayed finite.
    for resource in RESOURCES:
        value = platform.collector.latest(f"app/svc/usage/{resource}")
        assert value is not None and value == value and value >= 0
    latency = platform.collector.latest("app/svc/latency")
    assert latency is not None and 0 <= latency <= 30.0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rates=st.lists(st.floats(10.0, 150.0), min_size=2, max_size=4),
)
def test_many_random_services_share_cluster(rates):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=2),
        policy="adaptive",
    )
    for i, rate in enumerate(rates):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=ConstantTrace(rate),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=20,
                                      net_bw=20),
            plo=LatencyPLO(0.06, window=30),
        )
    platform.run(900.0)
    platform.cluster.verify_invariants()
    allocated = platform.api.total_allocated()
    allocatable = platform.api.total_allocatable()
    assert allocated.fits_within(allocatable, tolerance=1e-6)
    # Every service converged: modest load, ample cluster.
    for i in range(len(rates)):
        latency = platform.collector.latest(f"app/svc-{i}/latency")
        assert latency is not None and latency < 0.2
