"""Unit tests for the replicated control plane: election, failover,
self-fencing under partitions, and idempotent WAL replay."""

import pytest

from repro.cluster.chaos import FaultLog, PartitionInjector
from repro.cluster.resources import ResourceVector
from repro.control.ha import ReplicatedControlPlane
from repro.control.manager import ControlLoopManager
from repro.control.multiresource import (
    AllocationBounds,
    MultiResourceController,
)
from repro.control.pid import PIDGains
from repro.control.statestore import ControllerStateStore
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
TTL = 20.0  # 2 × the 10 s control interval (the plane's default)


def deploy(engine, api, collector, *, start_collector=True):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(100.0),
        demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
        initial_allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=20, net_bw=20),
        initial_replicas=1,
    )
    svc.plo = LatencyPLO(0.05, window=20)
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    if start_collector:
        collector.start()
    return svc


def make_plane(engine, api, collector, svc, *, replicas=3, **kwargs):
    managers = []
    for _ in range(replicas):
        manager = ControlLoopManager(engine, collector, interval=10.0)
        manager.register(
            svc, MultiResourceController(PIDGains(kp=0.8, ki=0.08), BOUNDS)
        )
        managers.append(manager)
    return ReplicatedControlPlane(engine, api, managers, **kwargs), managers


class TestElection:
    def test_first_alive_replica_wins_initial_election(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        plane, managers = make_plane(engine, api, collector, svc)
        plane.start()
        assert plane.leader_index() == 0
        assert plane.generation == 1
        (initial,) = plane.failovers
        assert initial.leader == "control-plane-0"
        assert initial.gap is None  # no predecessor, no gap
        # Only the leader's loop runs; standbys just watch the lease.
        engine.run_until(100.0)
        assert managers[0].loops > 0
        assert managers[1].loops == 0 and managers[2].loops == 0

    def test_default_ttl_is_twice_control_interval(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        plane, _ = make_plane(engine, api, collector, svc)
        assert plane.lease_ttl == pytest.approx(TTL)

    def test_leader_keeps_lease_while_healthy(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        plane, _ = make_plane(engine, api, collector, svc)
        plane.start()
        engine.run_until(500.0)
        assert plane.leader_index() == 0
        assert len(plane.failovers) == 1
        assert plane.step_downs == 0


class TestFailover:
    def test_crash_triggers_takeover_within_gap_bound(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        log = FaultLog()
        plane, managers = make_plane(
            engine, api, collector, svc, fault_log=log
        )
        plane.start()
        engine.run_until(100.0)
        plane.crash_replica(0)
        assert plane.leader_index() is None  # the gap: nobody actuates
        engine.run_until(100.0 + TTL + 10.0)
        assert plane.leader_index() in (1, 2)
        assert plane.generation == 2
        failover = plane.failovers[-1]
        # Gap = election − last renewal: bounded by TTL + one watch period.
        assert failover.gap is not None
        assert failover.gap < TTL + plane.watch_interval + 1.0
        (episode,) = log.by_kind("leader-gap")
        assert episode.duration() == pytest.approx(failover.gap)
        # Leadership transfer moved the HA hooks to the successor.
        leader = managers[plane.leader_index()]
        assert leader.actuation_sink == plane.store.append_wal
        assert managers[0].actuation_sink is None

    def test_successor_restores_durable_snapshot(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        store = ControllerStateStore(engine, snapshot_interval=60.0)
        plane, _ = make_plane(engine, api, collector, svc, store=store)
        plane.start()
        engine.run_until(150.0)  # snapshots at t=60 and t=120
        plane.crash_replica(0)
        engine.run_until(200.0)
        failover = plane.failovers[-1]
        assert failover.snapshot_restored
        assert 0.0 < failover.snapshot_age < 120.0
        # Every logged actuation was already applied: nothing re-issued.
        assert failover.wal_reissued == 0

    def test_restarted_replica_rejoins_as_standby(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        plane, _ = make_plane(engine, api, collector, svc)
        plane.start()
        engine.run_until(100.0)
        plane.crash_replica(0)
        with pytest.raises(ValueError):
            plane.crash_replica(0)  # already down
        engine.run_until(150.0)
        successor = plane.leader_index()
        plane.restart_replica(0)
        engine.run_until(400.0)
        # The healthy successor keeps renewing; no takeover happens.
        assert plane.leader_index() == successor
        assert plane.is_alive(0)
        assert plane.alive_indices() == [0, 1, 2]

    def test_failover_chain_survives_repeated_crashes(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        plane, _ = make_plane(engine, api, collector, svc)
        plane.start()
        for t in (100.0, 200.0):
            engine.run_until(t)
            leader = plane.leader_index()
            plane.crash_replica(leader)
            # Restart only after the successor is elected; an immediate
            # restart lets the old holder re-acquire its own lease.
            engine.schedule(50.0, lambda i=leader: plane.restart_replica(i))
        engine.run_until(300.0)
        assert plane.leader_index() is not None
        assert plane.generation == 3
        stats = plane.stats()
        assert stats["failovers"] == 3  # initial election + two takeovers


class TestPartition:
    def test_partitioned_leader_self_fences_before_takeover(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        api.partitions = PartitionInjector()
        plane, managers = make_plane(engine, api, collector, svc)
        plane.start()
        engine.run_until(100.0)
        api.partitions.partition("control-plane-0", engine.now)
        engine.run_until(100.0 + 2 * TTL)
        # The watchdog fenced the unreachable leader at the lease TTL —
        # strictly before any rival could steal the lease — so there was
        # never a moment with two actuating leaders.
        assert plane.fence_events >= 1
        assert plane.leader_index() in (1, 2)
        assert plane.replicas[0].renew_failures >= 1
        assert managers[0].partition_guard is None  # demoted: hooks gone
        # Still partitioned: replica 0 watches but cannot re-acquire.
        engine.run_until(300.0)
        assert plane.leader_index() in (1, 2)
        api.partitions.heal("control-plane-0", engine.now)
        engine.run_until(500.0)
        # Healed, it stays a standby; the incumbent keeps renewing.
        assert plane.leader_index() in (1, 2)

    def test_partition_during_gap_does_not_wedge_the_plane(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        api.partitions = PartitionInjector()
        plane, _ = make_plane(engine, api, collector, svc)
        plane.start()
        engine.run_until(100.0)
        # Partition one standby *and* crash the leader: the remaining
        # healthy standby must still win.
        api.partitions.partition("control-plane-1", engine.now)
        plane.crash_replica(0)
        engine.run_until(100.0 + 2 * TTL)
        assert plane.leader_index() == 2


class TestWalReplay:
    def test_replay_dedupes_applied_and_reissues_lost(
        self, engine, api, collector
    ):
        # No collector → no PLO signal → the loop never actuates on its
        # own, so the WAL contains exactly the records planted here.
        svc = deploy(engine, api, collector, start_collector=False)
        store = ControllerStateStore(engine, snapshot_interval=None)
        plane, _ = make_plane(engine, api, collector, svc, store=store)
        plane.start()
        engine.run_until(50.0)
        # "scale to 1" was applied (replica_count is already 1): dedupe.
        store.append_wal("svc", "scale", 1)
        # This resize was logged but never took effect: re-issue once.
        lost = svc.current_allocation().replace(cpu=2.0)
        store.append_wal("svc", "resize", lost)
        engine.run_until(100.0)
        plane.crash_replica(0)
        engine.run_until(150.0)
        failover = plane.failovers[-1]
        assert not failover.snapshot_restored  # snapshotting disabled
        assert failover.wal_replayed == 2
        assert failover.wal_deduped == 1
        assert failover.wal_reissued == 1
        assert svc.target_allocation.approx_equal(lost)

    def test_replay_keeps_only_newest_record_per_app_and_kind(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector, start_collector=False)
        store = ControllerStateStore(engine, snapshot_interval=None)
        plane, _ = make_plane(engine, api, collector, svc, store=store)
        plane.start()
        engine.run_until(50.0)
        stale = svc.current_allocation().replace(cpu=4.0)
        newest = svc.current_allocation().replace(cpu=2.0)
        store.append_wal("svc", "resize", stale)
        store.append_wal("svc", "resize", newest)
        engine.run_until(100.0)
        plane.crash_replica(0)
        engine.run_until(150.0)
        # Both records are in the replayed tail, but only the newest is
        # reconciled — the stale one was superseded in the old leader's
        # own timeline and must not clobber the newer target.
        failover = plane.failovers[-1]
        assert failover.wal_replayed == 2
        assert failover.wal_reissued == 1
        assert svc.target_allocation.approx_equal(newest)

    def test_records_for_unknown_apps_are_skipped(self, engine, api, collector):
        svc = deploy(engine, api, collector, start_collector=False)
        store = ControllerStateStore(engine, snapshot_interval=None)
        plane, _ = make_plane(engine, api, collector, svc, store=store)
        plane.start()
        engine.run_until(50.0)
        store.append_wal("ghost", "scale", 5)
        engine.run_until(100.0)
        plane.crash_replica(0)
        engine.run_until(150.0)
        failover = plane.failovers[-1]
        assert failover.wal_replayed == 1
        assert failover.wal_deduped == 0 and failover.wal_reissued == 0


class TestLifecycle:
    def test_stop_releases_lease_and_stops_loops(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        plane, managers = make_plane(engine, api, collector, svc)
        plane.start()
        engine.run_until(100.0)
        plane.stop()
        assert api.get_lease("control-plane") is None
        loops_at_stop = managers[0].loops
        engine.run_until(300.0)
        assert managers[0].loops == loops_at_stop

    def test_empty_replica_list_rejected(self, engine, api, collector):
        with pytest.raises(ValueError):
            ReplicatedControlPlane(engine, api, [])

    def test_double_start_rejected(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        plane, _ = make_plane(engine, api, collector, svc)
        plane.start()
        with pytest.raises(RuntimeError):
            plane.start()
