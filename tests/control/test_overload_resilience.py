"""Tests for the overload-resilience additions to the control loop:
half-open circuit breaker probes, backpressure on scale-ups, and
hysteretic brownout degradation."""

import pytest

from repro.cluster.api import ActuationError
from repro.cluster.chaos import FaultLog
from repro.cluster.resources import ResourceVector
from repro.control.backpressure import BackpressureState
from repro.control.manager import ControlLoopManager, ResilienceConfig
from repro.control.multiresource import AllocationBounds, MultiResourceController
from repro.control.pid import PIDGains
from repro.scheduler.admission import OverloadConfig
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def controller(**kwargs):
    return MultiResourceController(
        PIDGains(kp=0.8, ki=0.08), BOUNDS, deadband=0.1, **kwargs
    )


def deploy(engine, api, collector, *, rate=100.0):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=20, net_bw=20),
        initial_replicas=1,
    )
    svc.plo = LatencyPLO(0.05, window=20)
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    collector.start()
    return svc


def failing_action():
    raise ActuationError("injected")


class TestHalfOpenBreaker:
    def make_manager(self, engine, collector, svc, **overrides):
        kwargs = dict(
            breaker_failure_threshold=1, breaker_open_duration=50.0,
            retry_jitter=0.0, max_retries=0,
        )
        kwargs.update(overrides)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(**kwargs),
        )
        manager.register(svc, controller())
        return manager, manager._entries["svc"]

    def test_window_elapse_goes_half_open_not_closed(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        manager.start()
        engine.run_until(100.0)
        manager._trip_breaker(entry, engine.now)
        assert not entry.breaker_half_open
        engine.run_until(engine.now + 60.0)
        # The window elapsed: the loop went half-open (one probe), the
        # probe actuation succeeded, and the breaker closed through the
        # probe path — never by timeout alone.
        assert entry.breaker_probes == 1
        assert entry.breaker_open_until == 0.0
        assert not entry.breaker_half_open
        assert entry.breaker_trips == 1

    def test_successful_probe_closes_breaker(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.breaker_half_open = True
        applied = []
        assert manager._actuate(entry, lambda: applied.append(1))
        assert applied == [1]
        assert not entry.breaker_half_open
        assert entry.breaker_reopens == 0

    def test_failed_probe_reopens_full_window(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.breaker_half_open = True
        trips_before = entry.breaker_trips
        assert not manager._actuate(entry, failing_action)
        assert entry.breaker_reopens == 1
        assert entry.breaker_trips == trips_before + 1
        assert not entry.breaker_half_open
        assert entry.breaker_open_until == pytest.approx(engine.now + 50.0)
        # A failed probe re-opens directly; it never counts toward the
        # consecutive-failure threshold.
        assert entry.consecutive_failures == 0

    def test_probe_state_survives_export_restore(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.breaker_half_open = True
        state = manager.export_state()
        manager.reset_entries()
        assert not manager._entries["svc"].breaker_half_open
        manager.restore_state(state)
        assert manager._entries["svc"].breaker_half_open

    def test_resilience_stats_count_probes(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.breaker_half_open = True
        manager._actuate(entry, failing_action)
        stats = manager.resilience_stats()
        assert stats["breaker_reopens"] == 1
        res = manager.entry_resilience("svc")
        assert res["breaker_reopens"] == 1


class TestBackpressureState:
    def test_defer_coalesces_max_wins(self):
        bp = BackpressureState()
        bp.defer("a", 3)
        bp.defer("a", 5)
        bp.defer("a", 4)
        assert bp.release("a") == 5
        assert bp.release("a") is None
        stats = bp.stats()
        assert stats["deferrals"] == 3
        assert stats["coalesced"] == 2
        assert stats["releases"] == 1

    def test_drop_discards_queued_grow(self):
        bp = BackpressureState()
        bp.defer("a", 3)
        bp.drop("a")
        assert not bp.pending("a")
        assert bp.stats()["dropped"] == 1
        bp.drop("a")  # no queued entry: not counted
        assert bp.stats()["dropped"] == 1

    def test_clear_forgets_everything(self):
        bp = BackpressureState()
        bp.defer("a", 3)
        bp.defer("b", 2)
        bp.clear()
        assert not bp.pending("a") and not bp.pending("b")


class TestManagerBackpressure:
    def make_manager(self, engine, collector, svc):
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(retry_jitter=0.0),
            overload=OverloadConfig(backpressure=True),
        )
        manager.register(svc, controller())
        return manager, manager._entries["svc"]

    def test_disabled_by_default(self, engine, collector):
        manager = ControlLoopManager(engine, collector, interval=10.0)
        assert manager.backpressure is None
        assert manager.backpressure_stats()["deferrals"] == 0

    def test_grow_deferred_while_distressed(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.consecutive_failures = 2  # distress
        desired = manager._apply_backpressure(entry, 4, svc.replica_count, 0.0)
        assert desired == svc.replica_count
        assert manager.backpressure.pending("svc")
        assert manager.backpressure_stats()["deferrals"] == 1

    def test_calm_period_releases_held_grow(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.consecutive_failures = 1
        manager._apply_backpressure(entry, 5, 1, 0.0)
        entry.consecutive_failures = 0  # distress cleared
        desired = manager._apply_backpressure(entry, 1, 1, 10.0)
        assert desired == 5
        assert not manager.backpressure.pending("svc")

    def test_reclaim_supersedes_queued_grow(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        svc.scale_to(3)
        manager, entry = self.make_manager(engine, collector, svc)
        entry.consecutive_failures = 1
        manager._apply_backpressure(entry, 5, 3, 0.0)
        desired = manager._apply_backpressure(entry, 2, 3, 10.0)
        assert desired == 2  # shrink passes through under distress
        assert not manager.backpressure.pending("svc")
        assert manager.backpressure_stats()["dropped"] == 1

    def test_distress_signals(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(engine, collector, svc)
        assert not manager._distressed(0.0)
        for field, value in (
            ("safe_mode", True),
            ("breaker_half_open", True),
            ("consecutive_failures", 1),
        ):
            setattr(entry, field, value)
            assert manager._distressed(0.0), field
            setattr(entry, field, type(value)(0) if value is not True else False)
        entry.breaker_open_until = 100.0
        assert manager._distressed(0.0)
        assert not manager._distressed(200.0)


class BrownoutProbe:
    """Minimal app exposing the brownout surface."""

    def __init__(self, name="probe"):
        self.name = name
        self.plo = LatencyPLO(0.05, window=20)
        self.brownout_capable = True
        self.brownout_active = False
        self.entered = 0
        self.exited = 0

    def enter_brownout(self, *, factor, latency_penalty):
        self.brownout_active = True
        self.entered += 1

    def exit_brownout(self):
        self.brownout_active = False
        self.exited += 1


class TestBrownoutHysteresis:
    def make_manager(self, engine, api, collector, **cfg):
        svc = deploy(engine, api, collector)
        defaults = dict(
            brownout=True, brownout_enter_error=0.5, brownout_exit_error=0.05,
            brownout_enter_periods=2, brownout_exit_periods=2,
            brownout_latency_penalty=0.0,
        )
        defaults.update(cfg)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            overload=OverloadConfig(**defaults),
            fault_log=FaultLog(),
        )
        manager.register(svc, controller())
        return manager, manager._entries["svc"], svc

    def test_enters_after_consecutive_high_periods(
        self, engine, api, collector
    ):
        manager, entry, svc = self.make_manager(engine, api, collector)
        manager._update_brownout(entry, 1.0, 10.0)
        assert not svc.brownout_active
        manager._update_brownout(entry, 1.0, 20.0)
        assert svc.brownout_active
        assert entry.brownout_entries == 1
        episodes = manager.fault_log.by_kind("brownout")
        assert len(episodes) == 1 and episodes[0].active

    def test_non_consecutive_highs_do_not_enter(self, engine, api, collector):
        manager, entry, svc = self.make_manager(engine, api, collector)
        manager._update_brownout(entry, 1.0, 10.0)
        manager._update_brownout(entry, 0.0, 20.0)  # resets the streak
        manager._update_brownout(entry, 1.0, 30.0)
        assert not svc.brownout_active

    def test_exits_after_consecutive_low_periods(self, engine, api, collector):
        manager, entry, svc = self.make_manager(engine, api, collector)
        for t in (10.0, 20.0):
            manager._update_brownout(entry, 1.0, t)
        assert svc.brownout_active
        manager._update_brownout(entry, 0.0, 30.0)
        assert svc.brownout_active  # one low period is not enough
        manager._update_brownout(entry, 0.0, 40.0)
        assert not svc.brownout_active
        assert entry.brownout_exits == 1
        assert not manager.fault_log.active()  # episode closed on exit

    def test_exit_threshold_compensates_latency_penalty(
        self, engine, api, collector
    ):
        manager, entry, svc = self.make_manager(
            engine, api, collector, brownout_latency_penalty=0.02,
        )
        for t in (10.0, 20.0):
            manager._update_brownout(entry, 1.0, t)
        # The penalty (0.02) over the PLO target (0.05) floors the error
        # at 0.4; the compensated threshold must still allow an exit.
        for t in (30.0, 40.0):
            manager._update_brownout(entry, 0.4, t)
        assert not svc.brownout_active

    def test_apps_without_surface_are_skipped(self, engine, api, collector):
        manager, entry, svc = self.make_manager(engine, api, collector)
        probe = BrownoutProbe("other")
        probe.brownout_capable = False
        manager.register(probe, controller())
        other = manager._entries["other"]
        manager._update_brownout(other, 1.0, 10.0)
        manager._update_brownout(other, 1.0, 20.0)
        assert not probe.brownout_active
        assert other.brownout_entries == 0
