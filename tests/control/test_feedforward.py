"""Unit + integration tests for feedforward load anticipation."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.control.feedforward import FeedforwardScaler
from repro.control.multiresource import AllocationBounds, MultiResourceController
from repro.control.pid import PIDGains
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=32, disk_bw=400, net_bw=1000),
)


class TestFeedforwardScaler:
    def _app(self, engine, api):
        app = Microservice(
            "svc", engine, api, trace=ConstantTrace(1),
            demands=ServiceDemands(cpu_seconds=0.01),
            initial_allocation=ResourceVector(cpu=1, memory=1),
        )
        return app

    def test_no_series_no_signal(self, engine, api, collector):
        ff = FeedforwardScaler(collector)
        assert ff.signal(self._app(engine, api), 100.0) == 0.0

    def test_flat_load_no_signal(self, engine, api, collector):
        ff = FeedforwardScaler(collector, window=30.0)
        for t in (10.0, 20.0, 30.0):
            engine.run_until(t)
            collector.record("app/svc/offered", 100.0)
        assert ff.signal(self._app(engine, api), 30.0) == 0.0

    def test_surge_produces_signal(self, engine, api, collector):
        ff = FeedforwardScaler(collector, gain=0.5, threshold=0.15, window=30.0)
        for t in (10.0, 20.0):
            engine.run_until(t)
            collector.record("app/svc/offered", 100.0)
        engine.run_until(30.0)
        collector.record("app/svc/offered", 200.0)
        signal = ff.signal(self._app(engine, api), 30.0)
        assert signal > 0.15
        assert ff.activations == 1

    def test_signal_clamped(self, engine, api, collector):
        ff = FeedforwardScaler(collector, gain=10.0, limit=0.4, window=30.0)
        engine.run_until(10.0)
        collector.record("app/svc/offered", 10.0)
        engine.run_until(20.0)
        collector.record("app/svc/offered", 1000.0)
        assert ff.signal(self._app(engine, api), 20.0) == 0.4

    def test_load_drop_ignored(self, engine, api, collector):
        ff = FeedforwardScaler(collector, window=30.0)
        engine.run_until(10.0)
        collector.record("app/svc/offered", 200.0)
        engine.run_until(20.0)
        collector.record("app/svc/offered", 20.0)
        assert ff.signal(self._app(engine, api), 20.0) == 0.0

    def test_invalid_params(self, collector):
        with pytest.raises(ValueError):
            FeedforwardScaler(collector, gain=-1)
        with pytest.raises(ValueError):
            FeedforwardScaler(collector, limit=0)


class TestControllerIntegration:
    def test_feedforward_triggers_grow_inside_deadband(self):
        from repro.control.estimator import SaturationSnapshot
        ctrl = MultiResourceController(PIDGains(kp=1.0), BOUNDS, deadband=0.2)
        snapshot = SaturationSnapshot(
            {"cpu": 0.95, "memory": 0.3, "disk_bw": 0.3, "net_bw": 0.3}
        )
        current = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)
        calm = ctrl.decide(0.0, snapshot, current, dt=10.0)
        assert calm.action == "hold"
        boosted = ctrl.decide(0.0, snapshot, current, dt=10.0, feedforward=0.5)
        assert boosted.action == "grow"
        assert boosted.new_allocation.cpu > current.cpu

    def test_negative_feedforward_rejected(self):
        from repro.control.estimator import SaturationSnapshot
        ctrl = MultiResourceController(PIDGains(kp=1.0), BOUNDS)
        snap = SaturationSnapshot(
            {r: 0.5 for r in ("cpu", "memory", "disk_bw", "net_bw")}
        )
        with pytest.raises(ValueError):
            ctrl.decide(0.0, snap, BOUNDS.minimum, dt=1.0, feedforward=-0.1)


@pytest.mark.slow
def test_feedforward_cuts_surge_violations():
    """End to end: anticipation reduces the violation burst of a surge.

    A flash crowd ramps load over ~2 minutes: the feedforward term sees
    the offered-rate climb and grows allocations while the latency
    percentile still looks healthy; pure feedback starts a control
    period later and eats more violation-seconds.
    """
    from repro.workloads.traces import CompositeTrace, FlashCrowdTrace

    def run(feedforward: bool):
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=4),
            config=PlatformConfig(seed=6),
            policy="adaptive",
            policy_kwargs={"horizontal": False, "feedforward": feedforward},
        )
        platform.deploy_microservice(
            "svc",
            trace=CompositeTrace([
                ConstantTrace(60.0),
                FlashCrowdTrace(start_time=1800.0, peak_rate=400.0,
                                rise=90.0, decay=1200.0),
            ]),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=1, memory=1.5, disk_bw=20, net_bw=20),
            plo=LatencyPLO(0.05, window=30),
        )
        platform.run(3600.0)
        return platform.result().trackers["svc"].violation_seconds

    with_ff = run(True)
    without = run(False)
    assert with_ff < without
