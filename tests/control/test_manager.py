"""Unit tests for the control loop manager (closed loop, small scale)."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.control.manager import ControlLoopManager
from repro.control.multiresource import AllocationBounds, MultiResourceController
from repro.control.pid import PIDGains
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def controller(**kwargs):
    return MultiResourceController(
        PIDGains(kp=0.8, ki=0.08), BOUNDS, deadband=0.1, **kwargs
    )


def deploy(engine, api, collector, *, rate=100.0, cpu=0.5, plo_target=0.05):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=20, net_bw=20),
        initial_replicas=1,
    )
    svc.plo = LatencyPLO(plo_target, window=20)
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    collector.start()
    return svc


def test_register_requires_plo(engine, api, collector):
    manager = ControlLoopManager(engine, collector)
    svc = Microservice(
        "nop", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=1, memory=1),
    )
    with pytest.raises(ValueError, match="no PLO"):
        manager.register(svc, controller())


def test_register_duplicate_rejected(engine, api, collector):
    manager = ControlLoopManager(engine, collector)
    svc = deploy(engine, api, collector)
    manager.register(svc, controller())
    with pytest.raises(ValueError, match="already"):
        manager.register(svc, controller())


def test_loop_grows_starved_service(engine, api, collector):
    """0.5 cores can serve 50 rps; offered 100 rps violates the PLO, and
    the loop must grow CPU until latency recovers."""
    svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
    manager = ControlLoopManager(engine, collector, interval=10.0)
    manager.register(svc, controller())
    manager.start()
    engine.run_until(600.0)
    assert svc.current_allocation().cpu > 1.0
    assert svc.current_latency <= 0.05 * 1.5
    stats = manager.entry_stats("svc")
    assert stats["grow"] >= 1


def test_loop_reclaims_overprovisioned_service(engine, api, collector):
    svc = deploy(engine, api, collector, rate=20.0, cpu=4.0, plo_target=0.2)
    manager = ControlLoopManager(engine, collector, interval=10.0)
    manager.register(svc, controller())
    manager.start()
    engine.run_until(900.0)
    assert svc.current_allocation().cpu < 2.0
    # Reclaim must not break the PLO.
    assert svc.current_latency <= 0.2


def test_loop_records_control_series(engine, api, collector):
    svc = deploy(engine, api, collector)
    manager = ControlLoopManager(engine, collector, interval=10.0)
    manager.register(svc, controller())
    manager.start()
    engine.run_until(60.0)
    assert collector.has_series("control/svc/error")
    assert collector.has_series("control/svc/output")
    assert collector.has_series("control/svc/gain_scale")


def test_loop_skips_before_metrics_exist(engine, api, collector):
    svc = deploy(engine, api, collector)
    manager = ControlLoopManager(engine, collector, interval=1.0)
    manager.register(svc, controller())
    # Run the loop once by hand before any scrape happened.
    manager.run_once()
    assert manager._entries["svc"].skipped >= 0  # no crash is the point


def test_finished_app_is_skipped(engine, api, collector):
    svc = deploy(engine, api, collector)
    manager = ControlLoopManager(engine, collector, interval=10.0)
    manager.register(svc, controller())
    manager.start()
    engine.run_until(30.0)
    svc.stop()
    loops_before = manager.loops
    engine.run_until(60.0)
    assert manager.loops > loops_before  # loop runs, app untouched


def test_unregister(engine, api, collector):
    svc = deploy(engine, api, collector)
    manager = ControlLoopManager(engine, collector)
    manager.register(svc, controller())
    manager.unregister("svc")
    manager.run_once()  # no entries, no crash


def test_horizontal_policy_invoked(engine, api, collector):
    calls = []

    class FakeHorizontal:
        def adjust(self, app, decision, ctrl):
            calls.append(decision.action)
            return app.replica_count

    svc = deploy(engine, api, collector)
    manager = ControlLoopManager(engine, collector, interval=10.0)
    manager.register(svc, controller(), horizontal=FakeHorizontal())
    manager.start()
    engine.run_until(60.0)
    assert calls


def test_invalid_interval(engine, collector):
    with pytest.raises(ValueError):
        ControlLoopManager(engine, collector, interval=0)
