"""Unit + property tests for the PID controller."""

import pytest
from hypothesis import given, strategies as st

from repro.control.pid import PIDController, PIDGains


class TestGains:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PIDGains(kp=-1)

    def test_scaled(self):
        gains = PIDGains(kp=1, ki=0.5, kd=0.2).scaled(2.0)
        assert (gains.kp, gains.ki, gains.kd) == (2.0, 1.0, 0.4)

    def test_scale_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            PIDGains(kp=1).scaled(0)


class TestProportional:
    def test_pure_p_output(self):
        pid = PIDController(PIDGains(kp=0.5), output_limits=(-10, 10))
        assert pid.update(1.0, dt=1.0) == pytest.approx(0.5)
        assert pid.update(-2.0, dt=1.0) == pytest.approx(-1.0)

    def test_zero_error_zero_output(self):
        pid = PIDController(PIDGains(kp=1, ki=0, kd=0))
        assert pid.update(0.0, dt=1.0) == 0.0


class TestIntegral:
    def test_integral_accumulates(self):
        pid = PIDController(PIDGains(kp=0, ki=0.1), output_limits=(-10, 10),
                            integral_limit=100)
        pid.update(1.0, dt=1.0)
        out = pid.update(1.0, dt=1.0)
        assert out == pytest.approx(0.2)

    def test_integral_limit_clamps(self):
        pid = PIDController(PIDGains(kp=0, ki=1.0), output_limits=(-100, 100),
                            integral_limit=0.5)
        for _ in range(100):
            out = pid.update(1.0, dt=1.0)
        assert out == pytest.approx(0.5)

    def test_conditional_antiwindup(self):
        pid = PIDController(PIDGains(kp=1.0, ki=0.5), output_limits=(-1, 1),
                            integral_limit=10)
        for _ in range(50):
            pid.update(2.0, dt=1.0)  # saturated high the whole time
        # Error flips: recovery should be fast because integral didn't wind.
        out = pid.update(-1.0, dt=1.0)
        assert out < 0.5

    def test_reset_clears_state(self):
        pid = PIDController(PIDGains(kp=1, ki=1), integral_limit=10)
        pid.update(1.0, dt=1.0)
        pid.reset()
        assert pid.integral_term == 0.0
        assert pid.last_output == 0.0


class TestDerivative:
    def test_derivative_opposes_rising_error(self):
        pid_d = PIDController(PIDGains(kp=0, kd=1.0), output_limits=(-10, 10),
                              derivative_alpha=1.0)
        pid_d.update(0.0, dt=1.0)
        out = pid_d.update(1.0, dt=1.0)
        assert out == pytest.approx(1.0)  # de/dt = 1

    def test_filter_smooths_derivative(self):
        raw = PIDController(PIDGains(kp=0, kd=1.0), output_limits=(-10, 10),
                            derivative_alpha=1.0)
        filt = PIDController(PIDGains(kp=0, kd=1.0), output_limits=(-10, 10),
                             derivative_alpha=0.2)
        raw.update(0.0, dt=1.0)
        filt.update(0.0, dt=1.0)
        assert abs(filt.update(5.0, dt=1.0)) < abs(raw.update(5.0, dt=1.0))


class TestClampingAndValidation:
    def test_output_clamped(self):
        pid = PIDController(PIDGains(kp=100), output_limits=(-1, 1))
        assert pid.update(10.0, dt=1.0) == 1.0
        assert pid.update(-10.0, dt=1.0) == -1.0

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            PIDController(PIDGains(kp=1), output_limits=(1, 1))

    def test_invalid_dt(self):
        pid = PIDController(PIDGains(kp=1))
        with pytest.raises(ValueError):
            pid.update(1.0, dt=0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PIDController(PIDGains(kp=1), derivative_alpha=0)

    def test_gain_scale_applies(self):
        pid = PIDController(PIDGains(kp=1), output_limits=(-10, 10))
        pid.gain_scale = 2.0
        assert pid.update(1.0, dt=1.0) == pytest.approx(2.0)


class TestClosedLoop:
    def test_converges_on_first_order_plant(self):
        """PI control of a simple lag plant reaches the setpoint."""
        pid = PIDController(PIDGains(kp=0.8, ki=0.3), output_limits=(-5, 5),
                            integral_limit=5)
        state = 0.0
        setpoint = 1.0
        for _ in range(200):
            error = setpoint - state
            u = pid.update(error, dt=0.1)
            state += 0.5 * u * 0.1  # plant: integrator with gain 0.5
        assert state == pytest.approx(setpoint, abs=0.05)


class TestProperties:
    errors = st.floats(min_value=-100, max_value=100, allow_nan=False)

    @given(st.lists(errors, min_size=1, max_size=50))
    def test_output_always_within_limits(self, error_seq):
        pid = PIDController(PIDGains(kp=2, ki=0.5, kd=0.3), output_limits=(-1, 1))
        for e in error_seq:
            out = pid.update(e, dt=1.0)
            assert -1.0 <= out <= 1.0

    @given(st.lists(errors, min_size=1, max_size=50))
    def test_integral_term_bounded(self, error_seq):
        pid = PIDController(PIDGains(kp=1, ki=0.5), integral_limit=2.0)
        for e in error_seq:
            pid.update(e, dt=1.0)
            assert abs(pid.integral_term) <= 2.0 + 1e-9

    @given(errors)
    def test_pure_p_is_stateless(self, e):
        a = PIDController(PIDGains(kp=0.7), output_limits=(-1e6, 1e6))
        b = PIDController(PIDGains(kp=0.7), output_limits=(-1e6, 1e6))
        b.update(42.0, dt=1.0)  # history must not matter for P-only output
        assert a.update(e, dt=1.0) == pytest.approx(b.update(e, dt=1.0))
