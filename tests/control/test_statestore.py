"""Unit tests for the durable controller statestore (snapshots + WAL)."""

import pytest

from repro.cluster.chaos import FaultLog
from repro.cluster.resources import ResourceVector
from repro.control.statestore import ControllerStateStore
from repro.sim.engine import Engine


FSYNC = 0.5  # exaggerated so durability windows are easy to hit in tests


@pytest.fixture
def store(engine: Engine) -> ControllerStateStore:
    return ControllerStateStore(engine, fsync_latency=FSYNC)


class TestValidation:
    def test_bad_knobs_rejected(self, engine):
        with pytest.raises(ValueError):
            ControllerStateStore(engine, snapshot_interval=0.0)
        with pytest.raises(ValueError):
            ControllerStateStore(engine, fsync_latency=-1.0)

    def test_unknown_wal_kind_rejected(self, engine, store):
        with pytest.raises(ValueError):
            store.append_wal("svc", "reboot", None)


class TestWal:
    def test_records_are_sequenced_and_timestamped(self, engine, store):
        engine.run_until(10.0)
        first = store.append_wal("svc", "resize", ResourceVector(cpu=2))
        second = store.append_wal("svc", "scale", 3)
        assert (first.seq, second.seq) == (1, 2)
        assert first.time == 10.0
        assert first.durable_at == 10.0 + FSYNC

    def test_wal_after_filters_by_seq_and_durability(self, engine, store):
        store.append_wal("svc", "resize", ResourceVector(cpu=1))
        engine.run_until(10.0)
        store.append_wal("svc", "resize", ResourceVector(cpu=2))
        store.append_wal("svc", "scale", 2)
        # A crash at t=10 sees only what fsynced before it: the t=0 write.
        assert [r.seq for r in store.wal_after(0, at=10.0)] == [1]
        # After the fsync window everything is visible, oldest first.
        assert [r.seq for r in store.wal_after(0, at=10.0 + FSYNC)] == [1, 2, 3]
        assert [r.seq for r in store.wal_after(2, at=10.0 + FSYNC)] == [3]
        # Default horizon is the engine clock.
        assert [r.seq for r in store.wal_after(0)] == [1]


class TestSnapshots:
    def test_latest_snapshot_respects_durability(self, engine, store):
        engine.run_until(5.0)
        store.snapshot({"svc": {"n": 1}})
        assert store.latest_snapshot(at=5.0) is None  # not yet fsynced
        snap = store.latest_snapshot(at=5.0 + FSYNC)
        assert snap.state == {"svc": {"n": 1}}
        assert snap.wal_seq == 0

    def test_snapshot_pins_wal_watermark(self, engine, store):
        store.append_wal("svc", "scale", 2)
        store.append_wal("svc", "scale", 3)
        snap = store.snapshot({})
        store.append_wal("svc", "scale", 4)
        engine.run_until(10.0)
        # Replaying from the snapshot's watermark yields only the tail.
        assert [r.seq for r in store.wal_after(snap.wal_seq)] == [3]

    def test_newest_durable_snapshot_wins(self, engine, store):
        store.snapshot({"gen": 1})
        engine.run_until(60.0)
        store.snapshot({"gen": 2})
        engine.run_until(120.0)
        assert store.latest_snapshot().state == {"gen": 2}


class TestCorruption:
    def test_corruption_falls_back_to_older_snapshot(self, engine, store):
        log = FaultLog()
        store.log = log
        store.snapshot({"gen": 1})
        engine.run_until(60.0)
        store.snapshot({"gen": 2})
        engine.run_until(120.0)
        assert store.corrupt_latest(engine.now)
        assert store.latest_snapshot().state == {"gen": 1}
        (episode,) = log.by_kind("snapshot-corruption")
        assert episode.target == "snapshot-2"
        # Corrupting again strikes the fallback; recovery is then WAL-only.
        assert store.corrupt_latest(engine.now)
        assert store.latest_snapshot() is None
        assert store.corruptions == 2

    def test_nothing_durable_nothing_corrupted(self, engine, store):
        assert not store.corrupt_latest(engine.now)
        store.snapshot({})
        assert not store.corrupt_latest(engine.now)  # still in fsync window

    def test_stats(self, engine, store):
        store.snapshot({})
        store.append_wal("svc", "scale", 1)
        engine.run_until(10.0)
        store.corrupt_latest(engine.now)
        assert store.stats() == {
            "snapshots": 1, "wal_records": 1, "corruptions": 1,
        }
