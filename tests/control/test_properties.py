"""Property-based tests for the control stack."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.adaptive import AdaptiveGainTuner
from repro.control.estimator import BottleneckEstimator, SaturationSnapshot
from repro.control.multiresource import AllocationBounds, MultiResourceController
from repro.control.pid import PIDGains


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=32, disk_bw=400, net_bw=1000),
)

errors = st.floats(min_value=-5.0, max_value=50.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0)
snapshots = st.builds(
    lambda c, m, d, n: SaturationSnapshot(
        {"cpu": c, "memory": m, "disk_bw": d, "net_bw": n}
    ),
    fractions, fractions, fractions, fractions,
)


class TestControllerProperties:
    @settings(max_examples=80, deadline=None)
    @given(seq=st.lists(st.tuples(errors, snapshots), min_size=1, max_size=30))
    def test_allocation_always_within_bounds(self, seq):
        ctrl = MultiResourceController(PIDGains(kp=1.0, ki=0.1), BOUNDS)
        current = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)
        for error, snapshot in seq:
            decision = ctrl.decide(error, snapshot, current, dt=10.0)
            current = decision.new_allocation
            assert BOUNDS.minimum.fits_within(current)
            assert current.fits_within(BOUNDS.maximum)

    @settings(max_examples=80, deadline=None)
    @given(error=errors, snapshot=snapshots)
    def test_hold_never_changes_allocation(self, error, snapshot):
        ctrl = MultiResourceController(PIDGains(kp=1.0), BOUNDS)
        current = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)
        decision = ctrl.decide(error, snapshot, current, dt=10.0)
        if decision.action == "hold":
            assert decision.new_allocation == current

    @settings(max_examples=80, deadline=None)
    @given(error=st.floats(0.2, 50.0), snapshot=snapshots)
    def test_grow_never_shrinks_any_dimension(self, error, snapshot):
        ctrl = MultiResourceController(PIDGains(kp=1.0), BOUNDS)
        current = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)
        decision = ctrl.decide(error, snapshot, current, dt=10.0)
        if decision.action == "grow":
            for name in RESOURCES:
                assert decision.new_allocation[name] >= current[name] - 1e-9

    @settings(max_examples=80, deadline=None)
    @given(error=st.floats(-5.0, -0.2), snapshot=snapshots)
    def test_reclaim_never_grows_any_dimension(self, error, snapshot):
        ctrl = MultiResourceController(PIDGains(kp=1.0), BOUNDS)
        current = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)
        # Drain PID state first so the output sign follows the error.
        decision = ctrl.decide(error, snapshot, current, dt=10.0)
        if decision.action == "reclaim":
            for name in RESOURCES:
                assert decision.new_allocation[name] <= current[name] + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(seq=st.lists(errors, min_size=1, max_size=40))
    def test_tuner_scale_always_within_bounds(self, seq):
        tuner = AdaptiveGainTuner(bounds=(0.2, 5.0))
        for error in seq:
            scale = tuner.update(error)
            assert 0.2 <= scale <= 5.0


class TestEstimatorProperties:
    @settings(max_examples=100, deadline=None)
    @given(snapshot=snapshots)
    def test_weights_always_in_unit_interval(self, snapshot):
        estimator = BottleneckEstimator()
        for weights in (
            estimator.grow_weights(snapshot),
            estimator.reclaim_weights(snapshot),
        ):
            assert set(weights) == set(RESOURCES)
            assert all(0.0 <= w <= 1.0 for w in weights.values())

    @settings(max_examples=100, deadline=None)
    @given(snapshot=snapshots)
    def test_grow_weights_never_empty(self, snapshot):
        """The controller can always act on a violation."""
        weights = BottleneckEstimator().grow_weights(snapshot)
        assert any(w > 0 for w in weights.values())

    @settings(max_examples=100, deadline=None)
    @given(snapshot=snapshots)
    def test_grow_and_reclaim_disjoint_outside_fallback(self, snapshot):
        """No dimension is simultaneously grown and reclaimed — except in
        the fallback regime (nothing saturated), where grow falls back to
        the most-saturated dimension; the two sets are never used in the
        same control period, so overlap there is harmless by design."""
        estimator = BottleneckEstimator()
        if all(
            f < estimator.grow_threshold for f in snapshot.fractions.values()
        ):
            return
        grow = estimator.grow_weights(snapshot)
        reclaim = estimator.reclaim_weights(snapshot)
        for name in RESOURCES:
            assert not (grow[name] > 0 and reclaim[name] > 0)
