"""Unit tests for the bottleneck estimator."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.control.estimator import BottleneckEstimator, SaturationSnapshot


def snapshot(cpu=0.0, memory=0.0, disk_bw=0.0, net_bw=0.0):
    return SaturationSnapshot(
        {"cpu": cpu, "memory": memory, "disk_bw": disk_bw, "net_bw": net_bw}
    )


class TestSnapshot:
    def test_from_vectors(self):
        snap = SaturationSnapshot.from_vectors(
            ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=0),
            ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100),
        )
        assert snap.fractions == {
            "cpu": 0.5, "memory": 0.5, "disk_bw": 0.5, "net_bw": 0.0
        }

    def test_zero_allocation_is_zero_fraction(self):
        snap = SaturationSnapshot.from_vectors(
            ResourceVector(cpu=1), ResourceVector()
        )
        assert snap.fractions["cpu"] == 0.0

    def test_most_saturated(self):
        assert snapshot(cpu=0.2, disk_bw=0.9).most_saturated() == "disk_bw"


class TestGrowWeights:
    def test_saturated_dim_gets_weight(self):
        est = BottleneckEstimator(grow_threshold=0.85)
        weights = est.grow_weights(snapshot(cpu=0.95, memory=0.3))
        assert weights["cpu"] > 0
        assert weights["memory"] == 0.0

    def test_multiple_saturated_dims_share(self):
        est = BottleneckEstimator()
        weights = est.grow_weights(snapshot(cpu=0.99, disk_bw=0.99))
        assert weights["cpu"] > 0 and weights["disk_bw"] > 0

    def test_fully_saturated_gets_full_weight(self):
        est = BottleneckEstimator()
        weights = est.grow_weights(snapshot(cpu=1.0))
        assert weights["cpu"] == 1.0

    def test_fallback_to_most_saturated(self):
        est = BottleneckEstimator(grow_threshold=0.85)
        weights = est.grow_weights(snapshot(cpu=0.5, net_bw=0.6))
        assert weights["net_bw"] == 1.0
        assert sum(1 for w in weights.values() if w > 0) == 1

    def test_weights_bounded(self):
        est = BottleneckEstimator()
        weights = est.grow_weights(
            snapshot(cpu=1.0, memory=1.0, disk_bw=1.0, net_bw=1.0)
        )
        assert all(0 <= w <= 1 for w in weights.values())


class TestReclaimWeights:
    def test_idle_dim_reclaims(self):
        est = BottleneckEstimator(reclaim_threshold=0.6)
        weights = est.reclaim_weights(snapshot(cpu=0.1, disk_bw=0.9))
        assert weights["cpu"] > 0
        assert weights["disk_bw"] == 0.0

    def test_busy_dim_never_reclaims(self):
        est = BottleneckEstimator()
        weights = est.reclaim_weights(snapshot(cpu=0.95, memory=0.95,
                                               disk_bw=0.95, net_bw=0.95))
        assert all(w == 0.0 for w in weights.values())

    def test_memory_reclaims_more_cautiously(self):
        est = BottleneckEstimator(memory_headroom=0.5)
        weights = est.reclaim_weights(snapshot(cpu=0.1, memory=0.1))
        assert weights["memory"] == pytest.approx(weights["cpu"] * 0.5)

    def test_totally_idle_dim_full_weight(self):
        est = BottleneckEstimator()
        weights = est.reclaim_weights(snapshot())
        assert weights["cpu"] == 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grow_threshold": 1.0},
            {"reclaim_threshold": 0.0},
            {"grow_threshold": 0.5, "reclaim_threshold": 0.6},
            {"memory_headroom": 2.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BottleneckEstimator(**kwargs)
