"""Unit tests for the adaptive gain tuner."""

import pytest

from repro.control.adaptive import AdaptiveGainTuner


def test_initial_scale_is_one():
    assert AdaptiveGainTuner().scale == 1.0


def test_oscillation_shrinks_gains():
    tuner = AdaptiveGainTuner(window=8, oscillation_flips=3, deadband=0.05)
    for e in [0.5, -0.5, 0.5, -0.5, 0.5]:
        tuner.update(e)
    assert tuner.scale < 1.0
    assert tuner.oscillation_events >= 1


def test_sluggishness_grows_gains():
    tuner = AdaptiveGainTuner(sluggish_periods=4, deadband=0.05)
    for _ in range(4):
        tuner.update(0.5)
    assert tuner.scale > 1.0
    assert tuner.sluggish_events == 1


def test_persistent_negative_error_also_sluggish():
    tuner = AdaptiveGainTuner(sluggish_periods=4, deadband=0.05)
    for _ in range(4):
        tuner.update(-0.5)
    assert tuner.scale > 1.0


def test_deadband_errors_cause_no_adaptation():
    tuner = AdaptiveGainTuner(deadband=0.1)
    for _ in range(20):
        tuner.update(0.05)
    assert tuner.scale == pytest.approx(1.0, abs=0.01)
    assert tuner.oscillation_events == 0
    assert tuner.sluggish_events == 0


def test_scale_bounded():
    tuner = AdaptiveGainTuner(bounds=(0.5, 2.0), sluggish_periods=2)
    for _ in range(100):
        tuner.update(1.0)
    assert tuner.scale <= 2.0

    tuner2 = AdaptiveGainTuner(bounds=(0.5, 2.0), oscillation_flips=2, window=4)
    for i in range(100):
        tuner2.update(0.5 if i % 2 == 0 else -0.5)
    assert tuner2.scale >= 0.5


def test_relaxes_toward_one():
    tuner = AdaptiveGainTuner(relax=0.5, sluggish_periods=2)
    tuner.update(1.0)
    tuner.update(1.0)  # sluggish → grow
    grown = tuner.scale
    assert grown > 1.0
    # Now converged: small errors relax the scale back down.
    for _ in range(20):
        tuner.update(0.0)
    assert 1.0 <= tuner.scale < grown


def test_window_cleared_after_adaptation():
    tuner = AdaptiveGainTuner(sluggish_periods=3)
    for _ in range(3):
        tuner.update(1.0)
    assert tuner.sluggish_events == 1
    # One more big error isn't 3-in-a-row in the fresh window.
    tuner.update(1.0)
    assert tuner.sluggish_events == 1


def test_reset():
    tuner = AdaptiveGainTuner(sluggish_periods=2)
    tuner.update(1.0)
    tuner.update(1.0)
    tuner.reset()
    assert tuner.scale == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 1},
        {"shrink": 1.0},
        {"grow": 1.0},
        {"bounds": (0.0, 2.0)},
        {"bounds": (0.5, 0.9)},
        {"relax": 2.0},
    ],
)
def test_invalid_params(kwargs):
    with pytest.raises(ValueError):
        AdaptiveGainTuner(**kwargs)
