"""Unit tests for the multi-resource controller."""

import pytest

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.estimator import SaturationSnapshot
from repro.control.multiresource import (
    AllocationBounds,
    MultiResourceController,
)
from repro.control.pid import PIDGains


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=32, disk_bw=400, net_bw=1000),
)
CURRENT = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)


def snap(**kwargs):
    fractions = {name: 0.3 for name in RESOURCES}
    fractions.update(kwargs)
    return SaturationSnapshot(fractions)


def make(**kwargs):
    kwargs.setdefault("deadband", 0.1)
    return MultiResourceController(PIDGains(kp=1.0), BOUNDS, **kwargs)


class TestBounds:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            AllocationBounds(
                minimum=ResourceVector(cpu=2), maximum=ResourceVector(cpu=1)
            )

    def test_at_ceiling(self):
        alloc = BOUNDS.maximum.replace(cpu=8)
        assert BOUNDS.at_ceiling(alloc, "cpu")
        assert not BOUNDS.at_ceiling(CURRENT, "cpu")

    def test_near_floor(self):
        assert BOUNDS.near_floor(BOUNDS.minimum)
        assert not BOUNDS.near_floor(BOUNDS.maximum)


class TestDecide:
    def test_violation_grows_bottleneck_dim(self):
        ctrl = make(adaptive=False)
        decision = ctrl.decide(1.0, snap(cpu=0.98), CURRENT, dt=10.0)
        assert decision.action == "grow"
        assert decision.new_allocation.cpu > CURRENT.cpu
        assert decision.new_allocation.memory == CURRENT.memory

    def test_overachieving_reclaims_idle_dims(self):
        ctrl = make(adaptive=False)
        decision = ctrl.decide(-0.5, snap(cpu=0.9, disk_bw=0.05), CURRENT, dt=10.0)
        assert decision.action == "reclaim"
        assert decision.new_allocation.disk_bw < CURRENT.disk_bw
        assert decision.new_allocation.cpu == CURRENT.cpu  # busy dim untouched

    def test_deadband_holds(self):
        ctrl = make(adaptive=False, deadband=0.2)
        decision = ctrl.decide(0.1, snap(cpu=0.99), CURRENT, dt=10.0)
        assert decision.action == "hold"
        assert decision.new_allocation == CURRENT

    def test_clamped_to_bounds(self):
        ctrl = make(adaptive=False)
        at_max = BOUNDS.maximum
        decision = ctrl.decide(2.0, snap(cpu=1.0), at_max, dt=10.0)
        assert decision.action == "hold"  # nothing can change
        assert decision.new_allocation == at_max

    def test_reclaim_never_below_minimum(self):
        ctrl = make(adaptive=False)
        near_min = BOUNDS.minimum * 1.05
        for _ in range(20):
            decision = ctrl.decide(-1.0, snap(), near_min, dt=10.0)
            near_min = decision.new_allocation
        assert BOUNDS.minimum.fits_within(near_min)

    def test_single_dimension_ablation_ignores_other_dims(self):
        ctrl = make(adaptive=False, dimensions=("cpu",))
        # Disk is the bottleneck but controller may only touch CPU.
        decision = ctrl.decide(1.0, snap(disk_bw=1.0), CURRENT, dt=10.0)
        assert decision.new_allocation.disk_bw == CURRENT.disk_bw
        assert decision.action == "hold"  # nothing it can do

    def test_single_dimension_grows_its_own_dim(self):
        ctrl = make(adaptive=False, dimensions=("cpu",))
        decision = ctrl.decide(1.0, snap(cpu=1.0), CURRENT, dt=10.0)
        assert decision.action == "grow"
        assert decision.new_allocation.cpu > CURRENT.cpu

    def test_reclaim_caution_damps_shrink(self):
        eager = make(adaptive=False, reclaim_caution=1.0)
        cautious = make(adaptive=False, reclaim_caution=0.2)
        d1 = eager.decide(-0.8, snap(), CURRENT, dt=10.0)
        d2 = cautious.decide(-0.8, snap(), CURRENT, dt=10.0)
        assert d2.new_allocation.cpu > d1.new_allocation.cpu

    def test_adaptive_scales_gains_on_persistent_error(self):
        ctrl = make(adaptive=True)
        for _ in range(6):
            decision = ctrl.decide(0.8, snap(cpu=1.0), CURRENT, dt=10.0)
        assert decision.gain_scale > 1.0

    def test_nonadaptive_keeps_scale_one(self):
        ctrl = make(adaptive=False)
        for _ in range(6):
            decision = ctrl.decide(0.8, snap(cpu=1.0), CURRENT, dt=10.0)
        assert decision.gain_scale == 1.0

    def test_grow_factor_floor_prevents_collapse(self):
        ctrl = make(adaptive=False, output_limits=(-5.0, 5.0), reclaim_caution=1.0)
        decision = ctrl.decide(-10.0, snap(), CURRENT, dt=10.0)
        for name in RESOURCES:
            assert decision.new_allocation[name] >= CURRENT[name] * 0.05 - 1e-9

    def test_decision_counter(self):
        ctrl = make()
        ctrl.decide(0.5, snap(cpu=1.0), CURRENT, dt=10.0)
        ctrl.decide(0.5, snap(cpu=1.0), CURRENT, dt=10.0)
        assert ctrl.decisions == 2

    def test_reset(self):
        ctrl = make()
        ctrl.decide(1.0, snap(cpu=1.0), CURRENT, dt=10.0)
        ctrl.reset()
        assert ctrl.pid.last_output == 0.0
        assert ctrl.tuner.scale == 1.0


class TestValidation:
    def test_unknown_dimension(self):
        with pytest.raises(ValueError):
            make(dimensions=("gpu",))

    def test_empty_dimensions(self):
        with pytest.raises(ValueError):
            make(dimensions=())

    def test_negative_deadband(self):
        with pytest.raises(ValueError):
            make(deadband=-0.1)

    def test_invalid_reclaim_caution(self):
        with pytest.raises(ValueError):
            make(reclaim_caution=0.0)
