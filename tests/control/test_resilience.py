"""Unit tests for the control loop's graceful-degradation machinery:
stale-signal safe mode, actuation retries with backoff, circuit breaker."""

import numpy as np
import pytest

from repro.cluster.api import ActuationError
from repro.cluster.chaos import FaultLog
from repro.cluster.resources import ResourceVector
from repro.control.manager import ControlLoopManager, ResilienceConfig
from repro.control.multiresource import (
    AllocationBounds,
    ControlDecision,
    MultiResourceController,
)
from repro.control.pid import PIDGains
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace


BOUNDS = AllocationBounds(
    minimum=ResourceVector(cpu=0.1, memory=0.25, disk_bw=5, net_bw=5),
    maximum=ResourceVector(cpu=8, memory=16, disk_bw=400, net_bw=400),
)
DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def controller(**kwargs):
    return MultiResourceController(
        PIDGains(kp=0.8, ki=0.08), BOUNDS, deadband=0.1, **kwargs
    )


def deploy(engine, api, collector, *, rate=100.0, cpu=0.5, plo_target=0.05):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=20, net_bw=20),
        initial_replicas=1,
    )
    svc.plo = LatencyPLO(plo_target, window=20)
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    collector.register(svc)
    collector.start()
    return svc


def failing_action():
    raise ActuationError("injected")


class TestResilienceConfig:
    def test_freshness_defaults_to_interval_multiple(self, engine, collector):
        manager = ControlLoopManager(engine, collector, interval=10.0)
        assert manager.freshness_timeout == pytest.approx(25.0)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(freshness_timeout=7.0),
        )
        assert manager.freshness_timeout == pytest.approx(7.0)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(safe_mode_after=0)
        with pytest.raises(ValueError):
            ResilienceConfig(retry_base_delay=0)
        with pytest.raises(ValueError):
            ResilienceConfig(retry_jitter=1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_open_duration=0)


class TestSafeMode:
    def test_enters_after_k_stale_periods_and_exits_on_signal(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=3),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(300.0)
        assert not manager.entry_resilience("svc")["safe_mode"]

        collector.stop()  # the whole scrape pipeline goes dark
        # The PLO's 20 s window empties first, so the signal is stale from
        # the 320 s period on; safe mode needs 3 such periods (at 340 s).
        engine.run_until(335.0)
        assert not manager.entry_resilience("svc")["safe_mode"]
        engine.run_until(345.0)
        res = manager.entry_resilience("svc")
        assert res["safe_mode"]
        assert res["safe_mode_entries"] == 1

        # Frozen at last-known-good: the target must not move while dark.
        frozen = svc.target_allocation
        engine.run_until(500.0)
        assert svc.target_allocation == frozen
        assert manager.entry_resilience("svc")["safe_mode_entries"] == 1

        collector.start()  # scrapes resume
        engine.run_until(560.0)
        res = manager.entry_resilience("svc")
        assert not res["safe_mode"]
        assert res["safe_mode_exits"] == 1

    def test_exit_resets_controller_state(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        ctrl = controller()
        resets = []
        original_reset = ctrl.reset
        ctrl.reset = lambda: (resets.append(engine.now), original_reset())[-1]
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=2),
        )
        manager.register(svc, ctrl)
        manager.start()
        engine.run_until(200.0)
        collector.stop()
        engine.run_until(400.0)
        assert manager.entry_resilience("svc")["safe_mode"]
        collector.start()
        engine.run_until(460.0)
        assert not manager.entry_resilience("svc")["safe_mode"]
        # The stale integral was discarded on exit.
        assert resets

    def test_no_safe_mode_before_first_signal(self, engine, api, collector):
        """Apps that never produced a signal (e.g. delayed start) skip
        quietly instead of entering a meaningless safe mode."""
        svc = deploy(engine, api, collector)
        collector.stop()  # nothing ever scraped
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=1),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(200.0)
        res = manager.entry_resilience("svc")
        assert not res["safe_mode"]
        assert res["safe_mode_entries"] == 0
        assert manager._entries["svc"].skipped > 0

    def test_oscillation_below_boundary_never_enters_safe_mode(
        self, engine, api, collector
    ):
        """Staleness that keeps resolving one period short of
        ``safe_mode_after`` must never trip safe mode: the counter resets
        on every fresh signal instead of accumulating across gaps."""
        svc = deploy(engine, api, collector)
        collector.stop()  # signal freshness is driven by hand below
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=3),
        )
        manager.register(svc, controller())
        manager.start()
        # One latency sample every 40 s; with the PLO's 20 s window the
        # periods at +10/+20 see a fresh signal and +30/+40 are stale —
        # exactly safe_mode_after − 1 consecutive stale periods per cycle.
        for k in range(10):
            engine.schedule_at(
                40.0 * k + 9.0,
                lambda: collector.record("app/svc/latency", 0.04),
            )
        engine.run_until(400.0)
        res = manager.entry_resilience("svc")
        assert res["safe_mode_entries"] == 0
        assert not res["safe_mode"]

    def test_oscillation_at_boundary_enters_once_per_gap_without_thrash(
        self, engine, api, collector
    ):
        """Exactly ``safe_mode_after`` stale periods per cycle: each gap
        produces one clean entry/exit pair, never multiple entries (no
        thrashing while the signal stays dark)."""
        svc = deploy(engine, api, collector)
        collector.stop()
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=3),
        )
        manager.register(svc, controller())
        manager.start()
        # One sample every 50 s: fresh at +10/+20, stale at +30/+40/+50 —
        # safe mode entered on the third stale period, exited at +60.
        cycles = 8
        for k in range(cycles + 1):
            engine.schedule_at(
                50.0 * k + 9.0,
                lambda: collector.record("app/svc/latency", 0.04),
            )
        engine.run_until(50.0 * cycles + 25.0)
        res = manager.entry_resilience("svc")
        assert res["safe_mode_entries"] == cycles
        assert res["safe_mode_exits"] == cycles
        assert not res["safe_mode"]

    def test_safe_mode_series_recorded(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(safe_mode_after=2),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(100.0)
        collector.stop()
        engine.run_until(300.0)
        series = collector.series("control/svc/safe_mode")
        assert series.max_over(engine.now, 1e9) == 1.0


class TestRetries:
    def make_manager(self, engine, api, collector, svc, **cfg_kwargs):
        cfg_kwargs.setdefault("retry_jitter", 0.0)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(**cfg_kwargs),
        )
        manager.register(svc, controller())
        return manager, manager._entries["svc"]

    def test_backoff_grows_exponentially_and_caps(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(
            engine, api, collector, svc,
            retry_base_delay=2.0, retry_max_delay=16.0, max_retries=6,
            breaker_failure_threshold=100,
        )
        manager._actuate(entry, failing_action)
        delays = []
        while entry.retry_handle is not None:
            scheduled_at = engine.now
            delays.append(entry.retry_handle.time - scheduled_at)
            engine.run_until(entry.retry_handle.time)
        # 2, 4, 8 then capped at 16 for the remaining retries.
        assert delays == pytest.approx([2.0, 4.0, 8.0, 16.0, 16.0, 16.0])
        assert entry.retries == 6
        assert entry.actuation_failures == 7  # initial try + 6 retries

    def test_gives_up_after_max_retries(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(
            engine, api, collector, svc,
            max_retries=2, breaker_failure_threshold=100,
        )
        manager._actuate(entry, failing_action)
        engine.run_until(1000.0)
        assert entry.retries == 2
        assert entry.retry_handle is None
        assert entry.retry_action is None

    def test_jitter_spreads_delays(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(
                retry_base_delay=10.0, retry_jitter=0.25, max_retries=1,
                breaker_failure_threshold=100,
            ),
            rng=np.random.default_rng(5),
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        manager._actuate(entry, failing_action)
        delay = entry.retry_handle.time - engine.now
        assert 7.5 <= delay <= 12.5
        assert delay != pytest.approx(10.0)

    def test_retry_succeeds_and_clears_state(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(
            engine, api, collector, svc, breaker_failure_threshold=100,
        )
        outcomes = iter([ActuationError("boom"), None])

        def flaky():
            result = next(outcomes)
            if result is not None:
                raise result

        successes = []
        manager._actuate(entry, flaky, on_success=lambda: successes.append(1))
        assert not successes
        engine.run_until(100.0)
        assert successes == [1]
        assert entry.consecutive_failures == 0
        assert entry.retry_handle is None

    def test_retries_recorded_as_fault_log_episodes(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector)
        log = FaultLog()
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(
                retry_jitter=0.0, retry_base_delay=2.0, max_retries=3,
                breaker_failure_threshold=100,
            ),
            fault_log=log,
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        manager._actuate(entry, failing_action)
        engine.run_until(100.0)
        episodes = log.by_kind("actuation-retry")
        # One structured episode per retry window, covering the backoff.
        assert len(episodes) == 3
        assert all(e.target == "svc" for e in episodes)
        assert [e.detail for e in episodes] == [
            "attempt=1", "attempt=2", "attempt=3",
        ]
        assert [e.duration() for e in episodes] == pytest.approx(
            [2.0, 4.0, 8.0]
        )
        assert not log.active()  # recorded closed: MTTR joins stay simple

    def test_superseded_retry_is_dropped(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager, entry = self.make_manager(
            engine, api, collector, svc, breaker_failure_threshold=100,
        )
        calls = []

        def first():
            calls.append("first")
            raise ActuationError("boom")

        def second():
            calls.append("second")

        manager._actuate(entry, first)
        # A newer decision replaces the pending retry before it fires.
        manager._actuate(entry, second)
        engine.run_until(100.0)
        assert calls == ["first", "second"]


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(
                breaker_failure_threshold=3, retry_jitter=0.0, max_retries=0,
                breaker_open_duration=120.0,
            ),
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        for _ in range(3):
            manager._actuate(entry, failing_action)
        assert entry.breaker_trips == 1
        assert entry.breaker_open_until == pytest.approx(engine.now + 120.0)
        assert entry.retry_handle is None  # pending retries cancelled

    def test_open_breaker_skips_loop_and_closes_by_timeout(
        self, engine, api, collector
    ):
        svc = deploy(engine, api, collector, rate=100.0, cpu=0.5)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(breaker_open_duration=100.0),
        )
        manager.register(svc, controller())
        manager.start()
        engine.run_until(100.0)
        entry = manager._entries["svc"]
        manager._trip_breaker(entry, engine.now)
        engine.run_until(190.0)
        assert entry.breaker_skips >= 1
        skips_at_close = entry.breaker_skips
        engine.run_until(400.0)
        # Breaker closed by timeout: the loop decides again.
        assert entry.breaker_skips == skips_at_close
        assert collector.series("control/svc/breaker_open").last() == 0.0

    def test_trips_on_grow_reclaim_flapping(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(
                breaker_flap_window=6, breaker_flap_threshold=4,
            ),
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        alloc = svc.current_allocation()

        def decision(action):
            return ControlDecision(action, alloc, 0.0, 0.0, 1.0, {})

        tripped = []
        for action in ("grow", "reclaim", "grow", "reclaim", "grow"):
            tripped.append(manager._record_direction(entry, decision(action)))
        assert tripped == [False, False, False, False, True]
        assert entry.breaker_trips == 1

    def test_holds_do_not_count_as_flaps(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(engine, collector, interval=10.0)
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        alloc = svc.current_allocation()

        def decision(action):
            return ControlDecision(action, alloc, 0.0, 0.0, 1.0, {})

        for action in ("grow", "hold", "grow", "hold", "grow", "hold"):
            assert not manager._record_direction(entry, decision(action))
        assert entry.breaker_trips == 0


class TestLifecycle:
    def test_unregister_cancels_pending_retry(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(retry_jitter=0.0),
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        manager._actuate(entry, failing_action)
        assert entry.retry_handle is not None
        manager.unregister("svc")
        engine.run_until(100.0)  # cancelled retry must not fire

    def test_resilience_stats_aggregates(self, engine, api, collector):
        svc = deploy(engine, api, collector)
        manager = ControlLoopManager(
            engine, collector, interval=10.0,
            resilience=ResilienceConfig(retry_jitter=0.0, max_retries=1,
                                        breaker_failure_threshold=100),
        )
        manager.register(svc, controller())
        entry = manager._entries["svc"]
        manager._actuate(entry, failing_action)
        stats = manager.resilience_stats()
        assert stats["actuation_failures"] == 1
        assert stats["retries"] == 1
