"""Property test: offset-compacted TimeSeries vs a naive list reference.

The optimized storage (two plain lists + start offset, lazy compaction)
must be observationally identical to the obvious implementation — one
list of (time, value) pairs with FIFO pop(0) eviction. Seeded random
interleavings of appends and every query in the API are compared
sample-for-sample, with enough appends to cycle the compaction path
(`_start` reaching `maxlen`) many times, and window sizes that cross
the numpy vectorization cutover in both directions.
"""

import math

import numpy as np
import pytest

from repro.metrics.timeseries import _VECTORIZE_MIN, TimeSeries


class NaiveSeries:
    """Reference implementation: one list, linear scans everywhere."""

    def __init__(self, *, maxlen):
        self.maxlen = maxlen
        self.samples = []  # list of (time, value)

    def __len__(self):
        return len(self.samples)

    def append(self, time, value):
        if self.samples and time < self.samples[-1][0]:
            raise ValueError("out-of-order sample")
        self.samples.append((float(time), float(value)))
        if len(self.samples) > self.maxlen:
            self.samples.pop(0)

    def last(self):
        return self.samples[-1][1] if self.samples else None

    def last_time(self):
        return self.samples[-1][0] if self.samples else None

    def value_at(self, time):
        result = None
        for t, v in self.samples:
            if t <= time:
                result = v
        return result

    def window(self, start, end):
        return [(t, v) for t, v in self.samples if start < t <= end]

    def _window_values(self, now, span):
        return [v for _, v in self.window(now - span, now)]

    def mean_over(self, now, span):
        values = self._window_values(now, span)
        return sum(values) / len(values) if values else None

    def max_over(self, now, span):
        values = self._window_values(now, span)
        return max(values) if values else None

    def min_over(self, now, span):
        values = self._window_values(now, span)
        return min(values) if values else None

    def percentile_over(self, now, span, q):
        values = self._window_values(now, span)
        if not values:
            return None
        rank = max(0, math.ceil(q / 100 * len(values)) - 1)
        return sorted(values)[rank]

    def sum_over(self, now, span):
        return sum(self._window_values(now, span))

    def count_over(self, now, span):
        return len(self._window_values(now, span))

    def rate_over(self, now, span):
        samples = self.window(now - span, now)
        if len(samples) < 2:
            return None
        (t0, v0), (t1, v1) = samples[0], samples[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def ewma(self, alpha, *, count=None):
        values = [v for _, v in self.samples]
        if count is not None:
            values = values[len(values) - count:] if count < len(values) else values
        result = None
        for v in values:
            result = v if result is None else alpha * v + (1 - alpha) * result
        return result

    def integrate(self, start, end):
        if end <= start:
            return 0.0
        total = 0.0
        inside = [(t, v) for t, v in self.samples if t <= end]
        for i, (t, v) in enumerate(inside):
            seg_start = max(t, start)
            seg_end = inside[i + 1][0] if i + 1 < len(inside) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += v * (seg_end - seg_start)
        return total

    def to_lists(self):
        return [t for t, _ in self.samples], [v for _, v in self.samples]


def _approx(a, b):
    if a is None or b is None:
        assert a == b
    else:
        assert a == pytest.approx(b, rel=1e-12, abs=1e-12)


def _compare_all(series, reference, now, spans, rng):
    assert len(series) == len(reference)
    _approx(series.last(), reference.last())
    _approx(series.last_time(), reference.last_time())
    times, values = series.to_lists()
    ref_times, ref_values = reference.to_lists()
    assert times == ref_times and values == ref_values
    probe = float(rng.uniform(-1.0, now + 1.0))
    _approx(series.value_at(probe), reference.value_at(probe))
    for span in spans:
        assert series.window(now - span, now) == reference.window(
            now - span, now
        )
        _approx(series.mean_over(now, span), reference.mean_over(now, span))
        _approx(series.max_over(now, span), reference.max_over(now, span))
        _approx(series.min_over(now, span), reference.min_over(now, span))
        q = float(rng.uniform(0.0, 100.0))
        _approx(
            series.percentile_over(now, span, q),
            reference.percentile_over(now, span, q),
        )
        _approx(series.sum_over(now, span), reference.sum_over(now, span))
        assert series.count_over(now, span) == reference.count_over(now, span)
        _approx(series.rate_over(now, span), reference.rate_over(now, span))
    _approx(series.ewma(0.3), reference.ewma(0.3))
    _approx(series.ewma(0.8, count=7), reference.ewma(0.8, count=7))
    _approx(
        series.integrate(now / 3, now),
        reference.integrate(now / 3, now),
    )


class TestTimeSeriesAgainstNaiveReference:
    @pytest.mark.parametrize("maxlen,appends", [(16, 400), (128, 900)])
    def test_random_interleavings_match(self, maxlen, appends):
        rng = np.random.default_rng(20260807 + maxlen)
        series = TimeSeries(maxlen=maxlen)
        reference = NaiveSeries(maxlen=maxlen)
        now = 0.0
        compactions = 0
        last_start = 0
        for step in range(appends):
            # Occasional equal timestamps: the bisect boundaries must
            # treat duplicates exactly like the linear scan does.
            if rng.random() < 0.15:
                dt = 0.0
            else:
                dt = float(rng.uniform(0.01, 2.0))
            now += dt
            value = float(rng.normal(50.0, 20.0))
            series.append(now, value)
            reference.append(now, value)
            if series._start < last_start:
                compactions += 1
            last_start = series._start
            if step % 17 == 0 or rng.random() < 0.1:
                spans = (
                    0.5,
                    float(rng.uniform(1.0, 10.0)),
                    # Wide enough to cover the whole retention window,
                    # crossing the numpy cutover when maxlen allows it.
                    now + 1.0,
                )
                _compare_all(series, reference, now, spans, rng)
        # The appends must actually have exercised eviction-by-offset
        # and the periodic physical compaction, or the test proves
        # nothing about the optimized storage.
        assert compactions >= 2
        assert len(series) == maxlen
        _compare_all(series, reference, now, (1.0, now + 1.0), rng)

    def test_wide_window_crosses_vectorize_cutover(self):
        rng = np.random.default_rng(99)
        series = TimeSeries(maxlen=256)
        reference = NaiveSeries(maxlen=256)
        now = 0.0
        for _ in range(3 * _VECTORIZE_MIN):
            now += float(rng.uniform(0.1, 0.5))
            value = float(rng.normal(0.0, 5.0))
            series.append(now, value)
            reference.append(now, value)
        for span in (now + 1.0, now / 2, 1.0):
            _approx(series.max_over(now, span), reference.max_over(now, span))
            _approx(series.min_over(now, span), reference.min_over(now, span))
            for q in (0.0, 37.5, 50.0, 99.0, 100.0):
                _approx(
                    series.percentile_over(now, span, q),
                    reference.percentile_over(now, span, q),
                )

    def test_out_of_order_append_rejected_in_both(self):
        series = TimeSeries(maxlen=8)
        reference = NaiveSeries(maxlen=8)
        for s in (series, reference):
            s.append(1.0, 1.0)
            with pytest.raises(ValueError):
                s.append(0.5, 2.0)
