"""Integration tests: the checker on a live platform.

Covers the wiring half of the harness: `PlatformConfig(verify=True)`
attaches the registry through the engine cycle hook, seeded runs are
bit-identical with the checker on or off, the strided default stays
within its profiled overhead budget, and a corruption planted mid-run
is caught while the platform is driving real workloads.
"""

import cProfile

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.verify.invariants import InvariantChecker
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace


def _build(seed=21, *, verify=False, verify_every=32, replicas=1):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(
            seed=seed,
            verify=verify,
            verify_every=verify_every,
            controller_replicas=replicas,
        ),
        policy="adaptive",
    )
    platform.deploy_microservice(
        "web",
        trace=DiurnalTrace(base=150, amplitude=90, period=600),
        demands=ServiceDemands(cpu_seconds=0.006, base_latency=0.005),
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=10, net_bw=30),
        plo=LatencyPLO(0.05, window=30),
        replicas=2,
    )
    platform.submit_hpc(
        "mpi",
        ranks=3,
        duration=120.0,
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=5, net_bw=40),
        delay=30.0,
    )
    return platform


class TestPlatformWiring:
    def test_config_attaches_checker(self):
        platform = _build(verify=True)
        assert platform.checker is not None
        assert platform.checker.every == 32
        platform.run(300.0)
        assert platform.checker.cycles_seen > 0
        assert platform.checker.checks_run > 0
        assert platform.checker.ok, platform.checker.report()

    def test_checker_off_by_default(self):
        platform = _build()
        assert platform.checker is None

    def test_clean_run_with_every_cycle_checking(self):
        platform = _build(verify=True, verify_every=1, replicas=3)
        platform.run(400.0)
        checker = platform.checker
        checker.final_check()
        assert checker.ok, checker.report()
        assert checker.checks_run == checker.cycles_seen + 1

    def test_injected_double_bind_caught_mid_run(self):
        platform = _build(verify=True, verify_every=1)
        cluster = platform.cluster

        def corrupt():
            for pod in cluster.pods.values():
                if pod.active and pod.node_name is not None:
                    for node in cluster.nodes.values():
                        if node.name != pod.node_name and node.can_fit(
                            pod.allocation
                        ):
                            node.bind(pod)
                            return

        platform.engine.schedule_at(60.0, corrupt)
        platform.run(300.0)
        checker = platform.checker
        assert not checker.ok
        assert any(
            v.invariant == "no-double-bind" and "bound to 2 nodes" in v.detail
            for v in checker.violations
        )
        # Caught at the first audited boundary after the corruption.
        first = min(v.time for v in checker.violations)
        assert 60.0 <= first <= 70.0

    def test_final_check_covers_the_last_batch(self):
        # Cycle hooks fire *between* timestamps, so corruption in the
        # run's final events is only visible to an explicit final pass.
        platform = _build(verify=True, verify_every=1)
        platform.run(120.0)
        node = platform.cluster.get_node("node-00")
        node._allocated = node._allocated + ResourceVector(
            cpu=1, memory=0, disk_bw=0, net_bw=0
        )
        assert platform.checker.ok
        fresh = platform.checker.final_check()
        assert any("allocation drift" in v.detail for v in fresh)


class TestBitIdentity:
    def _fingerprint(self, platform):
        series = platform.collector.series("app/web/latency")
        times, values = series.to_lists()
        assert times, "fingerprint series must not be empty"
        return platform.engine.events_executed, times, values

    def test_checker_on_off_bit_identical(self):
        base = _build(seed=33)
        base.run(600.0)
        checked = _build(seed=33, verify=True, verify_every=1)
        checked.run(600.0)
        assert checked.checker.checks_run > 0
        assert self._fingerprint(base) == self._fingerprint(checked)

    def test_stride_does_not_change_the_run(self):
        a = _build(seed=33, verify=True, verify_every=1)
        a.run(600.0)
        b = _build(seed=33, verify=True, verify_every=64)
        b.run(600.0)
        assert self._fingerprint(a) == self._fingerprint(b)


class TestOverheadBudget:
    def test_default_stride_within_five_percent_call_budget(self):
        # The knob this gates: verify_every=32 (the PlatformConfig
        # default) must keep the checker within a 5% profiled-call
        # budget on a control-loop-heavy run. Call counts in a seeded
        # simulation are deterministic, so this is a stable gate, not a
        # wall-clock flake.
        def calls(verify):
            platform = _build(seed=21, verify=verify)
            profile = cProfile.Profile()
            profile.enable()
            platform.run(1800.0)
            profile.disable()
            return sum(
                entry.callcount for entry in profile.getstats()
            )

        baseline = calls(False)
        checked = calls(True)
        overhead = (checked - baseline) / baseline
        assert overhead < 0.05, f"checker call overhead {overhead:.1%}"


class TestWalReplayIdempotence:
    def test_second_restore_is_all_dedupe(self):
        # End-to-end strong idempotence behind the wal-discipline
        # invariant: after a real failover replayed the WAL tail, a
        # second replay must deduplicate every record — re-issuing an
        # absolute resize target the cluster already reflects would
        # trample concurrent changes.
        platform = _build(seed=5, verify=True, verify_every=1, replicas=3)
        plane = platform.control_plane
        platform.run(400.0)
        assert platform.statestore.wal, "adaptive run should log actuations"
        leader = plane.leader_index()
        assert leader is not None
        plane.crash_replica(leader)
        platform.run(200.0)
        assert plane.failovers, "crashing the leader should fail over"
        assert platform.checker.ok, platform.checker.report()
        new_leader = plane.leader_index()
        assert new_leader is not None and new_leader != leader
        stats = plane._restore(plane.replicas[new_leader].manager)
        assert stats["wal_reissued"] == 0
        assert stats["wal_failed"] == 0
        assert stats["wal_deduped"] >= 1
