"""Differential tests: optimized paths vs their disabled-reference twins.

Satellite of the correctness harness: the converged scheduler's
per-cycle score cache must be invisible — a seeded run with the cache
produces bit-identical placements to one that recomputes every score —
and telemetry on/off must not change a single decision.
"""

from repro.cluster.events import PodScheduled
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.verify.fuzzer import generate_scenario, telemetry_identity_violation
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.storage.placement import spread_blocks
from repro.workloads.traces import DiurnalTrace


def _run_mixed(score_cache: bool):
    """A 300-cycle mixed-worlds run with chaos, placements recorded."""
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=5),
        config=PlatformConfig(seed=13),
        scheduler="converged",
        policy="adaptive",
        scheduler_kwargs={"score_cache": score_cache},
    )
    platform.deploy_microservice(
        "web",
        trace=DiurnalTrace(base=180, amplitude=120, period=400),
        demands=ServiceDemands(cpu_seconds=0.006, base_latency=0.005),
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=10, net_bw=30),
        plo=LatencyPLO(0.05, window=30),
        replicas=3,
    )
    spread_blocks(
        platform.store, "events", total_mb=2000, block_mb=100,
        nodes=list(platform.cluster.nodes)[:2],
    )
    platform.submit_bigdata(
        "batch",
        stages=[
            Stage("scan", 200.0, input_mb=4000),
            Stage("agg", 150.0, input_mb=400, deps=("scan",)),
        ],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=60, net_bw=60),
        executors=2,
        dataset="events",
        delay=20.0,
    )
    platform.submit_hpc(
        "mpi",
        ranks=3,
        duration=80.0,
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=5, net_bw=40),
        delay=40.0,
    )
    platform.enable_chaos(
        mtbf=150.0,
        repair_time=60.0,
        domains=("crash", "degrade"),
    )
    placements = []
    platform.cluster.events.subscribe(
        PodScheduled,
        lambda e: placements.append((e.time, e.pod_name, e.node_name)),
    )
    # schedule_interval defaults to 1s: 300 simulated seconds is 300
    # scheduler cycles — churned throughout by chaos and gang restarts.
    platform.run(300.0)
    return platform, placements


class TestScoreCacheDifferential:
    def test_cached_and_reference_placements_identical(self):
        cached_platform, cached = _run_mixed(score_cache=True)
        reference_platform, reference = _run_mixed(score_cache=False)
        assert cached, "run should place pods"
        assert cached == reference
        assert (
            cached_platform.engine.events_executed
            == reference_platform.engine.events_executed
        )
        # Prove the two runs actually took different code paths.
        assert cached_platform.scheduler.score_cache_hits > 0
        assert reference_platform.scheduler.score_cache_hits == 0


class TestTelemetryIdentity:
    def test_fuzz_scenarios_decide_identically_with_telemetry(self):
        for index in (0, 1):
            spec = generate_scenario(7, index)
            assert telemetry_identity_violation(spec) is None
