"""Regression tests for the ``ctrl/*`` change-point encoding contract.

Telemetry self-metrics are delta-suppressed at scrape time: their series
hold value *changes*, not uniform ticks. The collector therefore stores
them as :class:`ChangePointSeries`, which must refuse every windowed
aggregate (they would weight change frequency, silently returning
garbage) while step reads — ``latest``/``last``/``value_at``/``window``/
``integrate`` — keep working unchanged.
"""

import pytest

from repro.cluster.resources import ResourceVector
from repro.metrics.timeseries import (
    ChangePointQueryError,
    ChangePointSeries,
    TimeSeries,
)
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace

_AGGREGATES = (
    ("mean_over", (100.0, 50.0)),
    ("max_over", (100.0, 50.0)),
    ("min_over", (100.0, 50.0)),
    ("percentile_over", (100.0, 50.0, 95.0)),
    ("sum_over", (100.0, 50.0)),
    ("count_over", (100.0, 50.0)),
    ("rate_over", (100.0, 50.0)),
    ("ewma", (0.5,)),
)


@pytest.fixture(scope="module")
def telemetry_platform():
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=9, telemetry=True),
        policy="adaptive",
    )
    platform.deploy_microservice(
        "web",
        trace=DiurnalTrace(base=120, amplitude=80, period=300),
        demands=ServiceDemands(cpu_seconds=0.005, base_latency=0.005),
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=10, net_bw=30),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.run(300.0)
    return platform


class TestCollectorStoresCtrlAsChangePoints:
    def test_ctrl_series_are_change_point_encoded(self, telemetry_platform):
        collector = telemetry_platform.collector
        ctrl = [n for n in collector.series_names() if n.startswith("ctrl/")]
        assert ctrl, "telemetry run should export ctrl/* series"
        for name in ctrl:
            assert isinstance(collector.series(name), ChangePointSeries), name

    def test_app_series_stay_plain(self, telemetry_platform):
        collector = telemetry_platform.collector
        series = collector.series("app/web/latency")
        assert isinstance(series, TimeSeries)
        assert not isinstance(series, ChangePointSeries)
        # Uniform-tick series keep their aggregates.
        assert series.mean_over(300.0, 100.0) is not None

    def test_windowed_aggregates_raise(self, telemetry_platform):
        collector = telemetry_platform.collector
        name = next(
            n
            for n in collector.series_names()
            if n.startswith("ctrl/") and len(collector.series(n)) > 0
        )
        series = collector.series(name)
        for method, args in _AGGREGATES:
            with pytest.raises(ChangePointQueryError):
                getattr(series, method)(*args)

    def test_collector_window_helpers_raise_too(self, telemetry_platform):
        # The aggregate helpers on the collector go through the same
        # series methods, so the contract holds there as well.
        collector = telemetry_platform.collector
        name = next(
            n for n in collector.series_names() if n.startswith("ctrl/")
        )
        with pytest.raises(ChangePointQueryError):
            collector.window_mean(name, 100.0)
        with pytest.raises(ChangePointQueryError):
            collector.window_percentile(name, 100.0, 95.0)

    def test_step_reads_pass(self, telemetry_platform):
        collector = telemetry_platform.collector
        name = next(
            n
            for n in collector.series_names()
            if n.startswith("ctrl/") and len(collector.series(n)) > 0
        )
        series = collector.series(name)
        assert collector.latest(name) is not None
        assert series.last() is not None
        last_time = series.last_time()
        assert last_time is not None
        assert series.value_at(last_time) == series.last()
        assert series.window(0.0, 300.0)
        assert series.integrate(0.0, 300.0) >= 0.0
        times, values = series.to_lists()
        assert len(times) == len(values) > 0


class TestChangePointSeriesUnit:
    def test_error_type_is_a_type_error(self):
        # Existing callers guard with except TypeError in a few places;
        # the refusal must stay inside that hierarchy.
        assert issubclass(ChangePointQueryError, TypeError)

    def test_refusal_message_names_the_alternatives(self):
        series = ChangePointSeries(maxlen=10)
        series.append(0.0, 1.0)
        with pytest.raises(ChangePointQueryError, match="value_at"):
            series.mean_over(10.0, 5.0)

    def test_inherited_step_reads(self):
        series = ChangePointSeries(maxlen=10)
        series.append(0.0, 1.0)
        series.append(5.0, 3.0)
        assert series.last() == 3.0
        assert series.value_at(4.9) == 1.0
        assert series.value_at(5.0) == 3.0
        # Step integral carries the last change point forward.
        assert series.integrate(0.0, 10.0) == 1.0 * 5 + 3.0 * 5
