"""ScenarioSpec format-v4 tests: trace-model fields, draw-order
discipline, and byte-identical v3 replay.

The versioning contract: a v4 parser must replay any v3 spec with a
bit-identical trajectory (the new fields default off and their RNG
draws come strictly *after* every v3 draw in generation), and the new
fields must round-trip, validate, and shrink away first.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.verify.fuzzer import (
    ARRIVAL_MODELS,
    FORMAT_VERSION,
    SUPPORTED_FORMATS,
    ScenarioSpec,
    generate_scenario,
    run_episode,
    shrink,
)

#: Two seeded v3 episodes captured before the v4 fields existed, with
#: the sha256 of their placement fingerprints. If parsing a v3 payload
#: through the v4 loader shifts even one scheduling decision, these
#: hashes break — the bit-identical-replay guarantee in action.
BAKED_V3 = [
    {
        "spec": {
            "chaos": [
                {"at": 56.0, "domain": "straggler", "duration": 42.1,
                 "target": 0},
                {"at": 84.8, "domain": "executor-kill", "duration": 103.0,
                 "target": 15},
            ],
            "controller_replicas": 1, "format": 3, "ft": True,
            "horizon": 240.0, "nodes": 5, "overload": True,
            "scheduler": "converged", "seed": 1809177421,
            "workloads": [
                {"kind": "bigdata", "name": "bigdata-0",
                 "params": {"agg_cpu": 324.0, "cpu": 1.09, "dataset": True,
                            "delay": 33.4, "executors": 2,
                            "input_mb": 6652.0, "memory": 4.0,
                            "scan_cpu": 282.0}},
                {"kind": "bigdata", "name": "bigdata-1",
                 "params": {"agg_cpu": 205.2, "cpu": 1.24, "dataset": False,
                            "delay": 0.2, "executors": 3,
                            "input_mb": 3333.8, "memory": 4.0,
                            "scan_cpu": 173.1}},
                {"kind": "hpc", "name": "hpc-2",
                 "params": {"cpu": 2.19, "delay": 53.9, "duration": 96.3,
                            "memory": 4.1, "ranks": 3}},
            ],
            "zones": 1,
        },
        "events": 808,
        "fingerprint": (
            "6a8aa714bee77309c2d6047c1383995f659e4bb7fbbb4e25f1a4a2bf38a0cb61"
        ),
    },
    {
        "spec": {
            "chaos": [
                {"at": 204.7, "domain": "degrade", "duration": 67.9,
                 "target": 3},
                {"at": 221.0, "domain": "crash", "duration": 94.3,
                 "target": 1},
            ],
            "controller_replicas": 1, "format": 3, "ft": False,
            "horizon": 420.0, "nodes": 3, "overload": True,
            "scheduler": "converged", "seed": 486701570,
            "workloads": [
                {"kind": "hpc", "name": "hpc-0",
                 "params": {"cpu": 3.53, "delay": 0.6, "duration": 107.9,
                            "memory": 4.5, "ranks": 4}},
            ],
            "zones": 1,
        },
        "events": 746,
        "fingerprint": (
            "7e1e441a436f6ad8c251557f99b74f775acbd8e56cc60ac044dc775d9ed328a6"
        ),
    },
]


def _fingerprint_hash(spec: ScenarioSpec) -> tuple[int, str]:
    result = run_episode(spec, every=8, collect_fingerprint=True)
    digest = hashlib.sha256(repr(result.fingerprint).encode()).hexdigest()
    return result.events_executed, digest


class TestFormatV4:
    def test_version_constants(self):
        assert FORMAT_VERSION == 4
        assert SUPPORTED_FORMATS == (1, 2, 3, 4)
        assert ARRIVAL_MODELS == ("rate", "poisson", "mmpp")

    def test_v3_payload_defaults_new_fields_off(self):
        spec = ScenarioSpec.from_dict(BAKED_V3[1]["spec"])
        assert spec.arrival_model == "rate"
        assert spec.heavy_tail is False
        assert spec.surge is False

    @pytest.mark.parametrize("baked", BAKED_V3, ids=["mixed", "hpc"])
    def test_v3_specs_replay_byte_identically(self, baked):
        spec = ScenarioSpec.from_dict(baked["spec"])
        events, digest = _fingerprint_hash(spec)
        assert events == baked["events"]
        assert digest == baked["fingerprint"]

    def test_v4_fields_round_trip(self):
        spec = generate_scenario(3, 0)
        armed = dataclasses.replace(
            spec, arrival_model="mmpp", heavy_tail=True, surge=True
        )
        recovered = ScenarioSpec.from_json(armed.to_json())
        assert recovered == armed
        data = json.loads(armed.to_json())
        assert data["format"] == 4
        assert data["arrival_model"] == "mmpp"

    def test_unknown_arrival_model_rejected(self):
        spec = generate_scenario(3, 0)
        with pytest.raises(ValueError, match="arrival_model"):
            dataclasses.replace(spec, arrival_model="fractal")

    def test_generator_covers_the_v4_models(self):
        specs = [
            generate_scenario(s, e)
            for s in range(20)
            for e in range(2)
        ]
        models = {s.arrival_model for s in specs}
        assert "poisson" in models and "mmpp" in models
        assert any(s.heavy_tail for s in specs)
        assert any(s.surge for s in specs)
        # rate-based specs stay the common case (v3 behaviour).
        assert sum(s.arrival_model == "rate" for s in specs) > len(specs) / 3


class TestV4Episodes:
    def _armed_spec(self):
        for s in range(60):
            spec = generate_scenario(s, 0)
            if spec.arrival_model != "rate" and spec.heavy_tail:
                return spec
        raise AssertionError("no armed spec found in 60 seeds")

    def test_armed_episode_runs_clean(self):
        result = run_episode(self._armed_spec(), every=8)
        assert result.ok, result.violations

    def test_armed_episode_same_seed_bit_identical(self):
        spec = self._armed_spec()
        assert _fingerprint_hash(spec) == _fingerprint_hash(spec)


class TestV4Shrinking:
    def test_shrink_disables_trace_models_first(self):
        spec = dataclasses.replace(
            generate_scenario(5, 0),
            arrival_model="mmpp",
            heavy_tail=True,
            surge=True,
        )

        # A predicate that keeps failing regardless of the v4 fields:
        # shrinking must turn them all off.
        shrunk = shrink(spec, lambda s: True)
        assert shrunk.arrival_model == "rate"
        assert shrunk.heavy_tail is False
        assert shrunk.surge is False

    def test_shrink_keeps_a_load_bearing_model(self):
        spec = dataclasses.replace(
            generate_scenario(5, 0),
            arrival_model="poisson",
        )
        # Fails only while the Poisson model is armed: shrinking must
        # not remove the failure carrier.
        shrunk = shrink(spec, lambda s: s.arrival_model == "poisson")
        assert shrunk.arrival_model == "poisson"
