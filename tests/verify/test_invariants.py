"""Unit tests: each invariant catches its own corruption class.

Every test plants one *specific* breach in an otherwise-healthy cluster
and asserts the matching invariant (and only a matching detail) fires.
The clusters here are built raw — engine + nodes + pods, no platform —
so each corruption is surgical.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.events import LeaderElected
from repro.cluster.node import Node
from repro.cluster.pod import PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.control.statestore import StateSnapshot, WalRecord
from repro.sim.engine import Engine
from repro.verify.invariants import (
    GangAtomicity,
    HeapIntegrity,
    InvariantChecker,
    InvariantViolation,
    LeaseDiscipline,
    NoDoubleBind,
    ResourceConservation,
    WalDiscipline,
    default_invariants,
)


def _vec(cpu=1.0, memory=1.0):
    return ResourceVector(cpu=cpu, memory=memory, disk_bw=10, net_bw=10)


def _cluster(node_count=2):
    engine = Engine()
    nodes = [
        Node(f"node-{i}", ResourceVector(cpu=8, memory=16, disk_bw=200, net_bw=200))
        for i in range(node_count)
    ]
    return engine, Cluster(engine, nodes)


def _spec(name, *, app=None, gang_id=None):
    return PodSpec(
        name=name,
        app=app or name,
        workload_class=WorkloadClass.MICROSERVICE,
        requests=_vec(),
        gang_id=gang_id,
    )


def _checker(engine, cluster, **kwargs):
    return InvariantChecker(engine, cluster, **kwargs)


class TestResourceConservation:
    def test_clean_cluster_passes(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        checker = _checker(engine, cluster)
        assert checker.check_now() == []
        assert checker.ok

    def test_allocation_drift_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        node = cluster.get_node("node-0")
        node._allocated = node._allocated + _vec(cpu=0.5, memory=0.0)
        checker = _checker(engine, cluster, invariants=[ResourceConservation()])
        details = [v.detail for v in checker.check_now()]
        assert any("allocation drift" in d for d in details)

    def test_over_allocation_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        node = cluster.get_node("node-0")
        node._allocated = node.allocatable + _vec()
        checker = _checker(engine, cluster, invariants=[ResourceConservation()])
        details = [v.detail for v in checker.check_now()]
        assert any("over-allocated" in d for d in details)

    def test_negative_allocation_detected(self):
        engine, cluster = _cluster()
        node = cluster.get_node("node-0")
        node._allocated = ResourceVector(cpu=-1, memory=0, disk_bw=0, net_bw=0)
        checker = _checker(engine, cluster, invariants=[ResourceConservation()])
        details = [v.detail for v in checker.check_now()]
        assert any("negative allocation" in d for d in details)

    def test_terminal_pod_holding_resources_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        # Flip the phase without releasing the node: a "finished" pod
        # that still occupies capacity.
        cluster.get_pod("a").phase = PodPhase.SUCCEEDED
        checker = _checker(engine, cluster, invariants=[ResourceConservation()])
        details = [v.detail for v in checker.check_now()]
        assert any("holds resources in phase succeeded" in d for d in details)


class TestNoDoubleBind:
    def test_double_bind_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        # The PR-acceptance corruption: bind the same pod onto a second
        # node behind the cluster's back.
        cluster.get_node("node-1").bind(cluster.get_pod("a"))
        checker = _checker(engine, cluster, invariants=[NoDoubleBind()])
        details = [v.detail for v in checker.check_now()]
        assert any("bound to 2 nodes" in d for d in details)

    def test_node_name_mismatch_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.bind("a", "node-0")
        cluster.get_pod("a").node_name = "node-1"
        checker = _checker(engine, cluster, invariants=[NoDoubleBind()])
        details = [v.detail for v in checker.check_now()]
        assert any("records node node-1" in d for d in details)

    def test_pending_pod_holding_resources_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.get_node("node-0").bind(cluster.get_pod("a"))
        checker = _checker(engine, cluster, invariants=[NoDoubleBind()])
        details = [v.detail for v in checker.check_now()]
        assert any("pending pod a still holds node resources" in d for d in details)

    def test_non_pending_pod_in_queue_detected(self):
        engine, cluster = _cluster()
        cluster.submit(_spec("a"))
        cluster.get_pod("a").phase = PodPhase.RUNNING
        checker = _checker(engine, cluster, invariants=[NoDoubleBind()])
        details = [v.detail for v in checker.check_now()]
        assert any("in the pending queue" in d for d in details)


class TestGangAtomicity:
    def _gang(self, cluster, size=2, prefix="rank"):
        for i in range(size):
            cluster.submit(_spec(f"{prefix}-{i}", app="job", gang_id="job"))

    def test_partial_schedule_without_fault_is_violation(self):
        engine, cluster = _cluster()
        self._gang(cluster)
        cluster.bind("rank-0", "node-0")  # rank-1 left pending: torn gang
        inv = GangAtomicity()
        checker = _checker(engine, cluster, invariants=[inv])
        details = [v.detail for v in checker.check_now()]
        assert any("partially scheduled" in d for d in details)

    def test_fully_bound_and_fully_pending_are_legal(self):
        engine, cluster = _cluster()
        self._gang(cluster)
        checker = _checker(engine, cluster, invariants=[GangAtomicity()])
        assert checker.check_now() == []  # all pending
        cluster.bind("rank-0", "node-0")
        cluster.bind("rank-1", "node-1")
        assert checker.check_now() == []  # all bound

    def test_eviction_makes_partial_state_legal_until_whole_again(self):
        engine, cluster = _cluster()
        self._gang(cluster)
        inv = GangAtomicity()
        checker = _checker(engine, cluster, invariants=[inv])
        checker.install()  # subscribes the eviction listener
        cluster.bind("rank-0", "node-0")
        cluster.bind("rank-1", "node-1")
        assert checker.check_now() == []
        cluster.evict("rank-1", reason="node-failure")
        # Survivors-only is NOT "whole": the degraded mark must survive
        # the window where the lost rank is terminal and its replacement
        # has not been resubmitted yet.
        assert checker.check_now() == []
        cluster.submit(_spec("rank-1b", app="job", gang_id="job"))
        assert checker.check_now() == []  # healing rebind in flight: legal
        cluster.bind("rank-1b", "node-1")
        assert checker.check_now() == []  # whole again at full size
        # Now that the gang healed, a fresh tear is a violation again.
        cluster.submit(_spec("rank-2", app="job", gang_id="job"))
        cluster.submit(_spec("rank-3", app="job", gang_id="job"))
        cluster.bind("rank-2", "node-0")
        details = [v.detail for v in checker.check_now()]
        assert any("partially scheduled" in d for d in details)
        checker.detach()


class TestLeaseDiscipline:
    def test_duplicate_generation_holder_detected(self):
        engine, cluster = _cluster()
        checker = _checker(engine, cluster, invariants=[LeaseDiscipline()])
        checker.install()
        cluster.events.publish(LeaderElected(0.0, "lease", "ctrl-0", 1))
        cluster.events.publish(LeaderElected(1.0, "lease", "ctrl-1", 1))
        details = [v.detail for v in checker.check_now()]
        assert any(
            "granted to both ctrl-0 and ctrl-1" in d for d in details
        )
        checker.detach()

    def test_generation_regression_detected(self):
        engine, cluster = _cluster()
        checker = _checker(engine, cluster, invariants=[LeaseDiscipline()])
        checker.install()
        cluster.events.publish(LeaderElected(0.0, "lease", "ctrl-0", 2))
        cluster.events.publish(LeaderElected(1.0, "lease", "ctrl-1", 1))
        details = [v.detail for v in checker.check_now()]
        assert any("issued after generation 2" in d for d in details)
        checker.detach()

    def test_monotonic_generations_pass(self):
        engine, cluster = _cluster()
        checker = _checker(engine, cluster, invariants=[LeaseDiscipline()])
        checker.install()
        for gen, holder in ((1, "ctrl-0"), (2, "ctrl-1"), (3, "ctrl-0")):
            cluster.events.publish(
                LeaderElected(float(gen), "lease", holder, gen)
            )
        assert checker.check_now() == []
        checker.detach()


class _StoreStub:
    """Just enough statestore surface for WalDiscipline."""

    def __init__(self):
        self.wal = []
        self.snapshots = []


class TestWalDiscipline:
    def _checker(self, engine, cluster, store):
        checker = InvariantChecker(
            engine, cluster, statestore=store, invariants=[WalDiscipline()]
        )
        return checker

    def test_clean_log_passes(self):
        engine, cluster = _cluster(1)
        store = _StoreStub()
        store.wal.append(WalRecord(1, 1.0, 1.005, "web", "resize", _vec()))
        store.wal.append(WalRecord(2, 2.0, 2.005, "web", "scale", 2))
        store.snapshots.append(StateSnapshot(1, 3.0, 3.005, 2, {}))
        checker = self._checker(engine, cluster, store)
        assert checker.check_now() == []

    def test_seq_regression_detected(self):
        engine, cluster = _cluster(1)
        store = _StoreStub()
        store.wal.append(WalRecord(2, 1.0, 1.005, "web", "resize", _vec()))
        store.wal.append(WalRecord(2, 2.0, 2.005, "web", "resize", _vec()))
        checker = self._checker(engine, cluster, store)
        details = [v.detail for v in checker.check_now()]
        assert any("seq 2 not after previous 2" in d for d in details)

    def test_durability_before_write_detected(self):
        engine, cluster = _cluster(1)
        store = _StoreStub()
        store.wal.append(WalRecord(1, 5.0, 4.0, "web", "resize", _vec()))
        checker = self._checker(engine, cluster, store)
        details = [v.detail for v in checker.check_now()]
        assert any("durable at 4" in d for d in details)

    def test_snapshot_beyond_log_detected(self):
        engine, cluster = _cluster(1)
        store = _StoreStub()
        store.wal.append(WalRecord(1, 1.0, 1.005, "web", "resize", _vec()))
        store.snapshots.append(StateSnapshot(1, 2.0, 2.005, 9, {}))
        checker = self._checker(engine, cluster, store)
        details = [v.detail for v in checker.check_now()]
        assert any("claims WAL position 9" in d for d in details)

    def test_scan_is_incremental(self):
        engine, cluster = _cluster(1)
        store = _StoreStub()
        store.wal.append(WalRecord(1, 1.0, 1.005, "web", "resize", _vec()))
        checker = self._checker(engine, cluster, store)
        assert checker.check_now() == []
        # A later append with a regressed seq is caught by the next
        # check even though the earlier prefix was already scanned.
        store.wal.append(WalRecord(1, 2.0, 2.005, "web", "resize", _vec()))
        details = [v.detail for v in checker.check_now()]
        assert any("seq 1 not after previous 1" in d for d in details)


class TestHeapIntegrity:
    def test_stale_heap_alias_push_detected(self):
        import heapq

        engine, cluster = _cluster(1)
        # Reintroduce the PR 4 compaction bug: events pushed onto a
        # pre-compaction alias of the heap list are orphaned.
        stale = engine._heap
        handle = engine.schedule_at(2.0, lambda: None)
        engine._heap = []
        heapq.heappush(stale, (3.0, 0, 999, handle))
        checker = _checker(engine, cluster, invariants=[HeapIntegrity()])
        details = [v.detail for v in checker.check_now()]
        assert any("stale" in d and "heap" in d for d in details)

    def test_clock_regression_detected(self):
        engine, cluster = _cluster(1)
        inv = HeapIntegrity()
        inv._last_now = 100.0  # as if a prior check saw t=100
        checker = _checker(engine, cluster, invariants=[inv])
        details = [v.detail for v in checker.check_now()]
        assert any("clock moved backwards" in d for d in details)


class TestCheckerMechanics:
    def test_raise_mode(self):
        engine, cluster = _cluster()
        node = cluster.get_node("node-0")
        node._allocated = ResourceVector(cpu=-1, memory=0, disk_bw=0, net_bw=0)
        checker = _checker(
            engine,
            cluster,
            invariants=[ResourceConservation()],
            on_violation="raise",
        )
        with pytest.raises(InvariantViolation) as exc:
            checker.check_now()
        assert exc.value.violation.invariant == "resource-conservation"

    def test_duplicate_observations_suppressed(self):
        engine, cluster = _cluster()
        node = cluster.get_node("node-0")
        node._allocated = ResourceVector(cpu=-1, memory=0, disk_bw=0, net_bw=0)
        checker = _checker(engine, cluster, invariants=[ResourceConservation()])
        first = checker.check_now()
        second = checker.check_now()
        # Negative allocation also shows up as drift: two details, once.
        assert len(first) == 2 and second == []
        assert len(checker.violations) == 2
        assert checker.suppressed == 2
        assert "2 duplicate observations suppressed" in checker.report()

    def test_stride_skips_boundaries(self):
        engine, cluster = _cluster()
        checker = _checker(engine, cluster, every=3)
        checker.install()
        for t in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
            engine.schedule_at(t, lambda: None)
        engine.run_until(10.0)
        checker.detach()
        # Boundaries before t=1..7 → 7 cycles, checked at cycles 1, 4, 7.
        assert checker.cycles_seen == 7
        assert checker.checks_run == 3

    def test_stop_on_violation_halts_run(self):
        engine, cluster = _cluster()
        checker = _checker(
            engine,
            cluster,
            invariants=[ResourceConservation()],
            stop_on_violation=True,
        )
        checker.install()

        def corrupt():
            node = cluster.get_node("node-0")
            node._allocated = ResourceVector(
                cpu=-1, memory=0, disk_bw=0, net_bw=0
            )

        engine.schedule_at(1.0, corrupt)
        ticks = []
        for t in (2.0, 3.0, 4.0):
            engine.schedule_at(t, lambda t=t: ticks.append(t))
        engine.run_until(10.0)
        checker.detach()
        assert not checker.ok
        # The boundary before t=2 flags the corruption and stops the
        # run; the t=2 event itself still steps, nothing after it does.
        assert ticks == [2.0]

    def test_default_registry_names(self):
        names = [inv.name for inv in default_invariants()]
        assert names == [
            "resource-conservation",
            "no-double-bind",
            "gang-atomicity",
            "lease-discipline",
            "wal-discipline",
            "heap-integrity",
            "shed-conservation",
            "data-plane-conservation",
        ]

    def test_validation(self):
        engine, cluster = _cluster()
        with pytest.raises(ValueError):
            InvariantChecker(engine, cluster, every=0)
        with pytest.raises(ValueError):
            InvariantChecker(engine, cluster, on_violation="log")


class TestDataPlaneConservation:
    """Each leg of the data-plane ledger catches its own corruption."""

    ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=50)

    def _ft_job(self, engine, api):
        from repro.dataplane import DataPlaneConfig
        from repro.workloads.bigdata import BigDataJob, Stage

        job = BigDataJob(
            "job", engine, api,
            stages=[Stage("map", 200.0)],
            initial_allocation=self.ALLOC, initial_executors=2,
            ft=DataPlaneConfig(enabled=True),
        )
        job.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        engine.run_until(20.0)
        return job

    def _check(self, engine, cluster, **kwargs):
        from repro.verify.invariants import CheckContext, DataPlaneConservation

        ctx = CheckContext(engine, cluster, **kwargs)
        return list(DataPlaneConservation().check(ctx))

    def test_clean_ft_job_passes(self, engine, cluster, api):
        job = self._ft_job(engine, api)
        assert self._check(engine, cluster, apps={"job": job}) == []

    def test_ledger_imbalance_detected(self, engine, cluster, api):
        job = self._ft_job(engine, api)
        job.ft_retired_work += 7.0  # work retired into no bucket
        violations = self._check(engine, cluster, apps={"job": job})
        assert len(violations) == 1
        assert "retired" in violations[0]

    def test_quarantine_budget_breach_detected(self, engine, cluster, api):
        job = self._ft_job(engine, api)
        job._runtime["map"].attempts = job.ft.stage_max_attempts + 1
        violations = self._check(engine, cluster, apps={"job": job})
        assert any("without quarantine" in v for v in violations)

    def test_fluid_mirror_drift_detected(self, engine, cluster, api):
        job = self._ft_job(engine, api)
        job.stages[0].remaining_work += 5.0  # fluid counter drifts off tasks
        violations = self._check(engine, cluster, apps={"job": job})
        assert any("fluid counter" in v for v in violations)

    def test_stream_arrival_imbalance_detected(self, engine, cluster, api):
        from repro.workloads.stream import Operator, StreamJob
        from repro.workloads.traces import ConstantTrace

        job = StreamJob(
            "stream", engine, api,
            trace=ConstantTrace(100.0),
            operators=[Operator("parse", 0.004)],
            initial_allocation=self.ALLOC, initial_workers=1,
        )
        job.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        engine.run_until(50.0)
        assert self._check(engine, cluster, apps={"stream": job}) == []
        job.lag_events += 5.0  # events neither processed nor lagging
        violations = self._check(engine, cluster, apps={"stream": job})
        assert len(violations) == 1
        assert "arrived" in violations[0]

    def test_repair_ledger_imbalance_detected(self, engine, cluster, api):
        from repro.storage.objectstore import ObjectStore
        from repro.storage.repair import StorageRepairService

        service = StorageRepairService(engine, ObjectStore(), api)
        assert self._check(engine, cluster, repair=service) == []
        service.repaired_mb += 4.0  # bytes landed that were never moved
        violations = self._check(engine, cluster, repair=service)
        assert len(violations) == 1
        assert "repair ledger" in violations[0]
