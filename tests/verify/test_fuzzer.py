"""Fuzzer tests: determinism, replayable repros, shrinking.

The acceptance bar from the issue: an injected double-bind must be
caught and shrink to a repro of at most 2 workloads and 1 chaos event,
and the repro JSON must replay to the same failure.
"""

import json

from repro.verify import fuzzer
from repro.verify.fuzzer import (
    ChaosEvent,
    ScenarioSpec,
    WorkloadSpec,
    fuzz,
    generate_scenario,
    load_spec,
    replay,
    run_episode,
    shrink,
    write_repro,
)


def _inject_double_bind(platform):
    """Plant the acceptance-criterion corruption at t=50."""

    def corrupt():
        cluster = platform.cluster
        for pod in cluster.pods.values():
            if pod.active and pod.node_name is not None:
                for node in cluster.nodes.values():
                    if node.name != pod.node_name and node.can_fit(
                        pod.allocation
                    ):
                        node.bind(pod)
                        return

    platform.engine.schedule_at(50.0, corrupt)


class TestScenarioGeneration:
    def test_deterministic_per_run_seed_and_index(self):
        assert generate_scenario(7, 3) == generate_scenario(7, 3)
        assert generate_scenario(7, 3) != generate_scenario(7, 4)
        assert generate_scenario(7, 3) != generate_scenario(8, 3)

    def test_episodes_are_independent_streams(self):
        # Episode 13 must not depend on whether episode 12 was drawn.
        fresh = generate_scenario(7, 13)
        _ = generate_scenario(7, 12)
        assert generate_scenario(7, 13) == fresh

    def test_generated_specs_are_well_formed(self):
        for index in range(10):
            spec = generate_scenario(7, index)
            assert 3 <= spec.nodes <= 5
            assert spec.horizon >= 240.0
            assert spec.controller_replicas in (1, 3)
            assert 1 <= len(spec.workloads) <= 4
            # v3: ft episodes append 1-3 data-plane events to the ≤ 3 base.
            assert len(spec.chaos) <= (6 if spec.ft else 3)
            for workload in spec.workloads:
                assert workload.kind in fuzzer.WORKLOAD_KINDS
            for event in spec.chaos:
                assert event.at >= 30.0
                assert event.duration >= 30.0


class TestSpecSerialization:
    def test_json_round_trip(self):
        spec = generate_scenario(7, 2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_format_version_rejected(self):
        payload = generate_scenario(7, 0).to_dict()
        payload["format"] = 99
        try:
            ScenarioSpec.from_dict(payload)
        except ValueError as err:
            assert "format 99" in str(err)
        else:
            raise AssertionError("expected ValueError")

    def test_write_and_load_repro(self, tmp_path):
        spec = generate_scenario(7, 1)
        path = write_repro(spec, [], tmp_path, 7, 1)
        assert path.name == "repro-7-1.json"
        assert load_spec(path) == spec
        # The human-facing extras don't leak into the replayed spec.
        assert "violations" in json.loads(path.read_text())


class TestEpisodes:
    def test_clean_episode(self):
        result = run_episode(generate_scenario(7, 0))
        assert result.ok
        assert result.events_executed > 0
        assert result.checks_run > 0

    def test_injected_double_bind_fails_episode(self):
        spec = generate_scenario(7, 0)
        result = run_episode(spec, inject=_inject_double_bind)
        assert not result.ok
        assert result.violations[0].invariant == "no-double-bind"

    def test_fingerprint_collection(self):
        result = run_episode(generate_scenario(7, 0), collect_fingerprint=True)
        assert result.fingerprint, "scenario should place at least one pod"
        time, pod, node = result.fingerprint[0]
        assert isinstance(pod, str) and isinstance(node, str)


class TestShrinking:
    def test_shrink_reaches_minimal_double_bind_repro(self):
        spec = generate_scenario(7, 0)
        assert not run_episode(spec, inject=_inject_double_bind).ok

        def still_fails(candidate):
            return not run_episode(candidate, inject=_inject_double_bind).ok

        shrunk = shrink(spec, still_fails)
        # Acceptance bar: ≤ 2 workloads and ≤ 1 chaos event.
        assert len(shrunk.workloads) <= 2
        assert len(shrunk.chaos) <= 1
        assert shrunk.horizon <= spec.horizon
        assert still_fails(shrunk)

    def test_shrink_respects_min_horizon(self):
        spec = generate_scenario(7, 0)

        def still_fails(candidate):
            return not run_episode(candidate, inject=_inject_double_bind).ok

        shrunk = shrink(spec, still_fails)
        assert shrunk.horizon >= fuzzer.MIN_HORIZON

    def test_shrink_keeps_failure_carrier(self):
        # A spec whose failure needs one specific workload keeps it.
        spec = ScenarioSpec(
            seed=3,
            horizon=120.0,
            nodes=3,
            workloads=(
                WorkloadSpec("hpc", "hpc-0", {
                    "ranks": 2, "duration": 90.0, "cpu": 2.0,
                    "memory": 4.0, "delay": 0.0,
                }),
                WorkloadSpec("micro", "micro-1", {
                    "base": 100.0, "amplitude": 40.0, "period": 600.0,
                    "cpu_seconds": 0.004, "cpu": 1.0, "memory": 2.0,
                    "plo": 0.05, "replicas": 1,
                }),
            ),
            chaos=(ChaosEvent("crash", 40.0, 60.0, 0),),
        )

        def still_fails(candidate):
            return any(w.kind == "micro" for w in candidate.workloads)

        shrunk = shrink(spec, still_fails)
        assert [w.kind for w in shrunk.workloads] == ["micro"]
        assert shrunk.chaos == ()


class TestFuzzLoop:
    def test_clean_fuzz_run(self, tmp_path):
        summary = fuzz(3, 7, out_dir=tmp_path)
        assert summary.ok
        assert summary.episodes == 3
        assert list(tmp_path.iterdir()) == []

    def test_failing_fuzz_run_writes_shrunken_repro(self, tmp_path):
        summary = fuzz(
            1, 7, out_dir=tmp_path, inject=_inject_double_bind
        )
        assert not summary.ok
        failure = summary.failures[0]
        assert failure.violations[0].invariant == "no-double-bind"
        assert len(failure.shrunk.workloads) <= 2
        assert len(failure.shrunk.chaos) <= 1
        assert failure.repro_path is not None
        # The written repro replays to the same failure class.
        result = run_episode(
            load_spec(failure.repro_path), inject=_inject_double_bind
        )
        assert not result.ok
        assert result.violations[0].invariant == "no-double-bind"

    def test_replay_seed_override(self, tmp_path):
        spec = generate_scenario(7, 0)
        path = write_repro(spec, [], tmp_path, 7, 0)
        base = replay(path)
        assert base.ok and base.spec.seed == spec.seed
        overridden = replay(path, seed=12345)
        assert overridden.spec.seed == 12345
        assert overridden.ok


class TestFormatV3:
    """PR-7 additions: the ft flag, data-plane chaos, and v2 compat."""

    def test_ft_round_trips_through_json(self):
        spec = ScenarioSpec(seed=1, horizon=120.0, nodes=3, workloads=(), ft=True)
        loaded = ScenarioSpec.from_json(spec.to_json())
        assert loaded == spec
        assert loaded.ft is True

    def test_v2_payload_defaults_ft_off(self):
        payload = generate_scenario(7, 0).to_dict()
        payload["format"] = 2
        payload.pop("ft")
        spec = ScenarioSpec.from_dict(payload)
        assert spec.ft is False

    def test_generator_emits_ft_episodes_with_data_chaos(self):
        specs = [generate_scenario(23, i) for i in range(25)]
        ft_specs = [s for s in specs if s.ft]
        assert ft_specs, "seed 23 draws ft episodes in 25 tries"
        assert any(not s.ft for s in specs)
        data_events = [
            e
            for s in ft_specs
            for e in s.chaos
            if e.domain in fuzzer.DATA_DOMAINS
        ]
        assert data_events
        for event in data_events:
            assert event.at >= 30.0 and event.duration >= 30.0
        # ft=False episodes never carry data-plane chaos.
        for spec in specs:
            if not spec.ft:
                assert all(
                    e.domain not in fuzzer.DATA_DOMAINS for e in spec.chaos
                )

    def test_ft_episode_runs_clean(self):
        spec = next(
            generate_scenario(23, i) for i in range(25)
            if generate_scenario(23, i).ft
        )
        assert any(e.domain in fuzzer.DATA_DOMAINS for e in spec.chaos)
        result = run_episode(spec)
        assert result.ok, [v.detail for v in result.violations]

    def test_shrink_tries_disabling_ft(self):
        spec = ScenarioSpec(
            seed=3,
            horizon=240.0,
            nodes=3,
            workloads=(
                WorkloadSpec("micro", "micro-0", {
                    "base": 100.0, "amplitude": 40.0, "period": 600.0,
                    "cpu_seconds": 0.004, "cpu": 1.0, "memory": 2.0,
                    "plo": 0.05, "replicas": 1,
                }),
            ),
            chaos=(ChaosEvent("executor-kill", 40.0, 60.0, 0),),
            ft=True,
        )

        def still_fails(candidate):
            # Failure independent of ft: the shrinker must turn it off.
            return any(w.kind == "micro" for w in candidate.workloads)

        shrunk = shrink(spec, still_fails)
        assert shrunk.ft is False
        assert still_fails(shrunk)
