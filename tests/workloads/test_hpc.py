"""Unit tests for the gang-scheduled HPC job model."""

import pytest

from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.workloads.hpc import HPCJob


ALLOC = ResourceVector(cpu=4, memory=8, disk_bw=10, net_bw=100)


def submit(engine, api, *, ranks=4, duration=100.0, **kw):
    job = HPCJob(
        "mpi", engine, api,
        ranks=ranks, duration=duration, allocation=ALLOC, **kw,
    )
    job.start()
    return job


def bind_all(engine, api, *, spread=True):
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)] if spread else nodes[0])
    engine.run_until(engine.now + 6.0)


class TestValidation:
    def test_invalid_params(self, engine, api):
        with pytest.raises(ValueError):
            HPCJob("j", engine, api, ranks=0, duration=10, allocation=ALLOC)
        with pytest.raises(ValueError):
            HPCJob("j", engine, api, ranks=2, duration=0, allocation=ALLOC)
        with pytest.raises(ValueError):
            HPCJob("j", engine, api, ranks=2, duration=10, allocation=ALLOC,
                   comm_fraction=1.0)

    def test_pods_carry_gang_id(self, engine, api):
        submit(engine, api)
        assert all(p.spec.gang_id == "mpi" for p in api.pending_pods())


class TestGangSemantics:
    def test_no_progress_until_gang_complete(self, engine, api):
        job = submit(engine, api, ranks=3)
        # Bind only two of three ranks.
        pods = api.pending_pods()
        api.bind_pod(pods[0].name, "node-0")
        api.bind_pod(pods[1].name, "node-1")
        engine.run_until(60.0)
        assert job.progress == 0.0
        assert job.gang_started_at is None

    def test_partial_gang_burns_trickle_cpu(self, engine, api):
        submit(engine, api, ranks=3)
        pods = api.pending_pods()
        api.bind_pod(pods[0].name, "node-0")
        engine.run_until(20.0)
        running = api.list_pods(phase=PodPhase.RUNNING)
        assert running
        assert running[0].usage.cpu <= 0.05

    def test_full_gang_runs_to_completion(self, engine, api):
        job = submit(engine, api, ranks=4, duration=100.0)
        bind_all(engine, api)
        engine.run_until(300.0)
        assert job.done
        # startup ≈6 s + 100 s of work.
        assert job.makespan() == pytest.approx(106, abs=5)
        assert job.wait_time() == pytest.approx(6, abs=3)

    def test_pods_succeed_on_completion(self, engine, api):
        job = submit(engine, api, ranks=2, duration=20.0)
        bind_all(engine, api)
        engine.run_until(100.0)
        assert job.done
        assert all(
            p.phase == PodPhase.SUCCEEDED for p in api.list_pods(app="mpi")
        )

    def test_slowest_rank_gates_gang(self, engine, api):
        job = submit(engine, api, ranks=2, duration=100.0, comm_fraction=0.0)
        bind_all(engine, api)
        # Squeeze one rank to half CPU.
        victim = job.running_pods()[0]
        api.patch_pod_allocation(victim.name, victim.allocation.replace(cpu=2))
        engine.run_until(engine.now + 2.0)
        assert job._rank_speed(victim.allocation) == pytest.approx(0.5)
        engine.run_until(400.0)
        assert job.done
        # Whole gang ran at half speed: ~200s of work.
        assert job.makespan() == pytest.approx(206, abs=15)

    def test_network_squeeze_slows_comm_heavy_job(self, engine, api):
        job = submit(engine, api, ranks=2, duration=100.0, comm_fraction=0.5)
        bind_all(engine, api)
        victim = job.running_pods()[0]
        api.patch_pod_allocation(victim.name, victim.allocation.replace(net_bw=50))
        engine.run_until(engine.now + 2.0)
        # comm half of time at half speed: rate = 1/(0.5 + 0.5/0.5) = 2/3.
        assert job._rank_speed(victim.allocation) == pytest.approx(2 / 3)

    def test_extra_allocation_does_not_speed_up(self, engine, api):
        job = submit(engine, api, ranks=2)
        bind_all(engine, api)
        fat = ALLOC.replace(cpu=8)
        assert job._rank_speed(fat) == pytest.approx(1.0)


class TestMetrics:
    def test_metrics_exported(self, engine, api):
        job = submit(engine, api, ranks=2, duration=100.0)
        bind_all(engine, api)
        engine.run_until(30.0)
        metrics = job.sample_metrics(engine.now)
        assert metrics["gang_complete"] == 1.0
        assert 0 < metrics["progress"] < 1
        assert metrics["gang_rate"] == pytest.approx(1.0)

    def test_usage_reflects_gang_rate(self, engine, api):
        job = submit(engine, api, ranks=2, duration=1000.0)
        bind_all(engine, api)
        engine.run_until(30.0)
        pod = job.running_pods()[0]
        assert pod.usage.cpu == pytest.approx(ALLOC.cpu, rel=0.05)
