"""Unit + property tests for microservice load shedding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace, StepTrace


DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def deploy(engine, api, *, trace, cpu=0.5, queue_limit=10.0):
    svc = Microservice(
        "svc", engine, api, trace=trace, demands=DEMANDS,
        initial_allocation=ResourceVector(cpu=cpu, memory=1, disk_bw=50,
                                          net_bw=50),
        queue_limit_seconds=queue_limit,
    )
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    engine.run_until(6.0)
    return svc


def test_no_drops_under_light_load(engine, api):
    svc = deploy(engine, api, trace=ConstantTrace(20))
    engine.run_until(60.0)
    assert svc.total_dropped == 0.0
    assert svc.current_drop_rate == 0.0


def test_overload_sheds_excess(engine, api):
    # 0.5 cores serve 50 rps; offered 200 rps ⇒ ~150 rps dropped.
    svc = deploy(engine, api, trace=ConstantTrace(200), queue_limit=5.0)
    engine.run_until(120.0)
    assert svc.current_drop_rate == pytest.approx(150, rel=0.1)
    assert svc.current_backlog <= 50 * 5.0 + 1e-6  # capacity × limit


def test_backlog_bounded_by_queue_limit(engine, api):
    svc = deploy(engine, api, trace=ConstantTrace(500), queue_limit=3.0)
    engine.run_until(300.0)
    assert svc.current_backlog <= 50 * 3.0 + 1e-6


def test_recovery_after_overload_is_fast(engine, api):
    trace = StepTrace([(0, 300), (120, 10)])
    svc = deploy(engine, api, trace=trace, queue_limit=10.0)
    engine.run_until(119.0)
    assert svc.current_latency > 1.0
    # With a bounded queue, draining takes ≤ queue_limit seconds of work.
    engine.run_until(200.0)
    assert svc.current_latency < 0.1


def test_drop_metrics_exported(engine, api):
    svc = deploy(engine, api, trace=ConstantTrace(500), queue_limit=2.0)
    engine.run_until(30.0)
    metrics = svc.sample_metrics(engine.now)
    assert metrics["drop_rate"] > 0
    assert metrics["dropped_total"] > 0


def test_invalid_queue_limit(engine, api):
    with pytest.raises(ValueError):
        Microservice(
            "svc", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=1, memory=1),
            queue_limit_seconds=0,
        )


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(1.0, 400.0), cpu=st.floats(0.2, 4.0))
    def test_served_plus_dropped_plus_backlog_conserves_arrivals(
        self, rate, cpu
    ):
        """Flow conservation: nothing appears or vanishes."""
        from repro.cluster.api import ClusterAPI
        from repro.sim.engine import Engine
        from tests.conftest import make_cluster

        engine = Engine()
        api = ClusterAPI(make_cluster(engine, startup_delay=0.1))
        svc = Microservice(
            "svc", engine, api, trace=ConstantTrace(rate), demands=DEMANDS,
            initial_allocation=ResourceVector(cpu=cpu, memory=2, disk_bw=50,
                                              net_bw=50),
        )
        svc.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        engine.run_until(1.0)  # running from t≈0.1
        start = engine.now
        engine.run_until(61.0)
        arrived = rate * (engine.now - start)
        accounted = svc.total_served + svc.total_dropped + svc.current_backlog
        assert accounted == pytest.approx(arrived, rel=0.05)
