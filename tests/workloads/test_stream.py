"""Unit + closed-loop tests for the stream-processing workload."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.workloads.plo import LatencyPLO
from repro.workloads.stream import Operator, StreamJob
from repro.workloads.traces import ConstantTrace, StepTrace


CHAIN = [
    Operator("parse", cpu_seconds=0.002),
    Operator("filter", cpu_seconds=0.001, selectivity=0.2),
    Operator("window", cpu_seconds=0.01, state_mb_per_eps=2.0),
]
ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=10, net_bw=50)


def deploy(engine, api, *, trace, workers=1, allocation=ALLOC, **kw):
    job = StreamJob(
        "pipe", engine, api, trace=trace, operators=CHAIN,
        initial_allocation=allocation, initial_workers=workers, **kw,
    )
    job.start()
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)])
    engine.run_until(6.0)
    return job


class TestChainMath:
    def test_fused_cost_uses_selectivity(self, engine, api):
        job = deploy(engine, api, trace=ConstantTrace(1))
        # parse 0.002 + filter 0.001 + window 0.01×0.2 = 0.005 per event.
        assert job.cpu_per_event == pytest.approx(0.005)
        assert job.output_selectivity == pytest.approx(0.2)
        # window state discounted by upstream selectivity.
        assert job.state_mb_per_eps == pytest.approx(0.4)

    def test_validation(self, engine, api):
        with pytest.raises(ValueError, match="operator"):
            Operator("bad", cpu_seconds=-1)
        with pytest.raises(ValueError, match="selectivity"):
            Operator("bad", cpu_seconds=0.1, selectivity=0)
        with pytest.raises(ValueError, match="at least one"):
            StreamJob("s", engine, api, trace=ConstantTrace(1), operators=[],
                      initial_allocation=ALLOC)
        with pytest.raises(ValueError, match="duplicate"):
            StreamJob("s", engine, api, trace=ConstantTrace(1),
                      operators=[Operator("a", 0.1), Operator("a", 0.1)],
                      initial_allocation=ALLOC)


class TestDynamics:
    def test_keeps_up_under_capacity(self, engine, api):
        # Capacity: 2 cores / 0.005 = 400 eps; offered 200.
        job = deploy(engine, api, trace=ConstantTrace(200))
        engine.run_until(60.0)
        assert job.current_rate == pytest.approx(200, rel=0.05)
        assert job.current_lag_seconds < 0.5
        assert job.lag_events < 50

    def test_overload_accumulates_lag(self, engine, api):
        job = deploy(engine, api, trace=ConstantTrace(800))
        engine.run_until(66.0)
        # Processes at capacity (~400 eps); lag grows at ~400 eps while
        # running, plus the full 800 eps over the ~5 s startup window.
        assert job.current_rate == pytest.approx(400, rel=0.1)
        assert job.lag_events == pytest.approx(800 * 5 + 400 * 61, rel=0.15)
        assert job.current_lag_seconds > 30

    def test_lag_drains_after_load_drop(self, engine, api):
        job = deploy(engine, api, trace=StepTrace([(0, 800), (60, 100)]))
        engine.run_until(66.0)
        peak_lag = job.lag_events
        engine.run_until(200.0)
        assert job.lag_events < peak_lag / 4

    def test_ingest_bandwidth_bounds_capacity(self, engine, api):
        # net 50 MB/s / 1 MB/event = 50 eps despite ample CPU.
        job = deploy(engine, api, trace=ConstantTrace(200), event_mb=1.0)
        engine.run_until(60.0)
        assert job.current_rate == pytest.approx(50, rel=0.1)

    def test_memory_pressure_degrades_capacity(self, engine, api):
        lean = ALLOC.replace(memory=0.6)
        # state 0.4 MB/eps × 400 eps /1024 ≈ 0.16 GiB + base 0.5 > 0.6.
        job = deploy(engine, api, trace=ConstantTrace(500), allocation=lean)
        engine.run_until(60.0)
        assert job.current_rate < 400

    def test_usage_reflects_processing(self, engine, api):
        job = deploy(engine, api, trace=ConstantTrace(200), event_mb=0.05)
        engine.run_until(60.0)
        pod = job.running_pods()[0]
        assert pod.usage.cpu == pytest.approx(200 * 0.005, rel=0.1)
        assert pod.usage.net_bw == pytest.approx(200 * 0.05, rel=0.1)

    def test_no_workers_lag_at_ceiling(self, engine, api):
        job = StreamJob(
            "pipe", engine, api, trace=ConstantTrace(100), operators=CHAIN,
            initial_allocation=ALLOC, initial_workers=0,
        )
        job.start()
        engine.run_until(30.0)
        assert job.current_lag_seconds == job.max_lag_seconds
        assert job.lag_events > 0

    def test_metrics_exported(self, engine, api):
        job = deploy(engine, api, trace=ConstantTrace(100))
        engine.run_until(30.0)
        metrics = job.sample_metrics(engine.now)
        for key in ("latency", "lag_seconds", "lag_events", "throughput",
                    "offered", "output_rate"):
            assert key in metrics
        assert metrics["output_rate"] == pytest.approx(
            metrics["throughput"] * 0.2, rel=0.01
        )


class TestClosedLoop:
    def test_adaptive_controller_bounds_lag(self):
        """The standard controller manages a stream job unmodified: a lag
        PLO of 5 s under a 4× input surge."""
        from repro.platform.config import ClusterSpec, PlatformConfig
        from repro.platform.evolve import EvolvePlatform

        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=4),
            config=PlatformConfig(seed=12),
            policy="adaptive",
        )
        job = StreamJob(
            "pipe", platform.engine, platform.api,
            trace=StepTrace([(0, 150), (900, 600)]),
            operators=CHAIN,
            initial_allocation=ResourceVector(cpu=1, memory=2, disk_bw=10,
                                              net_bw=50),
            initial_workers=1,
        )
        job.plo = LatencyPLO(5.0, window=30)
        platform.apps[job.name] = job
        job.maintain_replicas = True
        platform.collector.register(job)
        platform.monitor.track(job)
        platform.policy.attach(job)
        job.start()
        platform.run(2 * 3600.0)
        tracker = platform.result().trackers["pipe"]
        assert job.current_lag_seconds < 5.0
        assert tracker.violation_fraction < 0.15
        # The controller actually had to grow something.
        assert job.current_allocation().cpu > 1.0 or job.replica_count > 1
