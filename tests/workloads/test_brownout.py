"""Unit tests for the microservice brownout (degraded-tier) surface."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace


DEMANDS = ServiceDemands(
    cpu_seconds=0.01,
    disk_mb=0.1,
    net_mb=0.05,
    mem_base=0.25,
    mem_per_inflight=0.001,
    base_latency=0.01,
)

AMPLE = ResourceVector(cpu=4, memory=4, disk_bw=200, net_bw=200)
TIGHT = ResourceVector(cpu=1, memory=2, disk_bw=50, net_bw=50)


def deploy(engine, api, *, rate=100.0, allocation=AMPLE):
    svc = Microservice(
        "svc", engine, api,
        trace=ConstantTrace(rate), demands=DEMANDS,
        initial_allocation=allocation, initial_replicas=1,
    )
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    engine.run_until(6.0)  # past startup delay
    return svc


class TestBrownoutSurface:
    def test_capable_and_inactive_by_default(self, engine, api, cluster):
        svc = deploy(engine, api)
        assert svc.brownout_capable
        assert not svc.brownout_active
        assert svc.brownouts_entered == 0

    def test_factor_validation(self, engine, api, cluster):
        svc = deploy(engine, api)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                svc.enter_brownout(factor=bad, latency_penalty=0.0)
        with pytest.raises(ValueError):
            svc.enter_brownout(factor=0.5, latency_penalty=-0.01)

    def test_enter_exit_roundtrip(self, engine, api, cluster):
        svc = deploy(engine, api)
        svc.enter_brownout(factor=0.5, latency_penalty=0.02)
        assert svc.brownout_active and svc.brownouts_entered == 1
        svc.exit_brownout()
        assert not svc.brownout_active
        svc.enter_brownout(factor=0.5, latency_penalty=0.02)
        assert svc.brownouts_entered == 2


class TestDegradedDemands:
    def test_scales_rate_demands_only(self, engine, api, cluster):
        svc = deploy(engine, api)
        svc.enter_brownout(factor=0.5, latency_penalty=0.0)
        degraded = svc._degraded_demands(DEMANDS)
        assert degraded.cpu_seconds == pytest.approx(0.005)
        assert degraded.disk_mb == pytest.approx(0.05)
        assert degraded.net_mb == pytest.approx(0.025)
        # Memory footprint and intrinsic latency are not tier-dependent.
        assert degraded.mem_base == DEMANDS.mem_base
        assert degraded.mem_per_inflight == DEMANDS.mem_per_inflight
        assert degraded.base_latency == DEMANDS.base_latency

    def test_cached_per_demands_and_factor(self, engine, api, cluster):
        svc = deploy(engine, api)
        svc.enter_brownout(factor=0.5, latency_penalty=0.0)
        first = svc._degraded_demands(DEMANDS)
        assert svc._degraded_demands(DEMANDS) is first
        svc.enter_brownout(factor=0.25, latency_penalty=0.0)
        second = svc._degraded_demands(DEMANDS)
        assert second is not first
        assert second.cpu_seconds == pytest.approx(0.0025)

    def test_degraded_tier_raises_capacity(self, engine, api, cluster):
        """Halving per-request demand doubles what a saturated replica
        can serve — the whole point of browning out."""
        svc = deploy(engine, api, rate=250.0, allocation=TIGHT)
        engine.run_until(60.0)
        saturated = svc.current_throughput
        svc.enter_brownout(factor=0.5, latency_penalty=0.0)
        engine.run_until(120.0)
        assert svc.current_throughput > saturated * 1.5


class TestBrownoutDynamics:
    def test_brownout_seconds_accumulate_only_while_active(
        self, engine, api, cluster
    ):
        svc = deploy(engine, api)
        engine.run_until(50.0)
        assert svc.brownout_seconds == 0.0
        svc.enter_brownout(factor=0.5, latency_penalty=0.0)
        engine.run_until(80.0)
        in_brownout = svc.brownout_seconds
        assert in_brownout == pytest.approx(30.0, abs=2.0)
        svc.exit_brownout()
        engine.run_until(120.0)
        assert svc.brownout_seconds == in_brownout

    def test_latency_penalty_applied_while_active(self, engine, api, cluster):
        svc = deploy(engine, api)
        engine.run_until(50.0)
        baseline = svc.current_latency
        svc.enter_brownout(factor=1.0, latency_penalty=0.05)
        engine.run_until(100.0)
        assert svc.current_latency == pytest.approx(baseline + 0.05, rel=0.1)
        svc.exit_brownout()
        engine.run_until(150.0)
        assert svc.current_latency == pytest.approx(baseline, rel=0.1)

    def test_penalty_clamped_to_max_latency(self, engine, api, cluster):
        svc = deploy(engine, api)
        svc.enter_brownout(factor=1.0, latency_penalty=1e9)
        engine.run_until(50.0)
        assert svc.current_latency <= svc.max_latency


class TestBrownoutMetrics:
    def test_series_absent_until_first_brownout(self, engine, api, cluster):
        svc = deploy(engine, api)
        engine.run_until(30.0)
        assert "brownout" not in svc.sample_metrics(engine.now)
        assert "brownout_seconds" not in svc.sample_metrics(engine.now)

    def test_series_present_after_entry_and_after_exit(
        self, engine, api, cluster
    ):
        svc = deploy(engine, api)
        svc.enter_brownout(factor=0.5, latency_penalty=0.0)
        engine.run_until(30.0)
        metrics = svc.sample_metrics(engine.now)
        assert metrics["brownout"] == 1.0
        assert metrics["brownout_seconds"] > 0.0
        svc.exit_brownout()
        # Once the series exists it keeps reporting (as 0) so plots do
        # not end mid-run.
        metrics = svc.sample_metrics(engine.now)
        assert metrics["brownout"] == 0.0
