"""Unit tests for application self-healing (maintain_replicas)."""

from repro.cluster.chaos import ActuationFaultInjector
from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.workloads.base import Application


ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=10, net_bw=10)


class Dummy(Application):
    def __init__(self, *args, **kwargs):
        kwargs.setdefault("workload_class", WorkloadClass.MICROSERVICE)
        kwargs.setdefault("initial_allocation", ALLOC)
        super().__init__(*args, **kwargs)

    def tick(self, dt, now):
        pass


def test_disabled_by_default(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2)
    app.start()
    api.delete_pod("svc-0", reason="preempted")
    engine.run_until(3.0)
    assert app.replica_count == 1
    assert app.replacements == 0


def test_respawns_lost_replica(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    api.delete_pod("svc-0", reason="preempted")
    engine.run_until(3.0)
    assert app.replica_count == 2
    assert app.replacements == 1
    # The replacement got a fresh name.
    assert {p.name for p in app.pods()} == {"svc-1", "svc-2"}


def test_respawn_uses_current_target_allocation(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=1, maintain_replicas=True)
    app.start()
    app.set_target_allocation(ALLOC.replace(cpu=3))
    api.delete_pod("svc-0", reason="node-failure")
    engine.run_until(3.0)
    replacement = app.pods()[0]
    assert replacement.allocation.cpu == 3


def test_scale_down_not_fought(engine, api):
    """Self-healing honors the autoscaler's desired count, not history."""
    app = Dummy("svc", engine, api, initial_replicas=3, maintain_replicas=True)
    app.start()
    app.scale_to(1)
    engine.run_until(5.0)
    assert app.replica_count == 1
    assert app.replacements == 0


def test_no_respawn_after_stop(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    app.stop()
    engine.run_until(10.0)
    assert app.replica_count == 0


def test_multiple_losses_all_replaced(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=3, maintain_replicas=True)
    app.start()
    for name in ("svc-0", "svc-1", "svc-2"):
        api.delete_pod(name, reason="node-failure")
    engine.run_until(3.0)
    assert app.replica_count == 3
    assert app.replacements == 3
    assert all(p.phase == PodPhase.PENDING for p in app.pods())


def test_single_loss_not_delayed(engine, api):
    """An isolated failure heals immediately; backoff needs a crash *loop*."""
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    api.delete_pod("svc-0", reason="node-failure")
    engine.run_until(3.0)
    assert app.replica_count == 2
    assert app.crash_loop_backoffs == 0


def test_crash_loop_triggers_backoff(engine, api):
    """Pods dying as fast as they respawn must stop resubmitting hot.

    A killer deletes every replica each second (after the app's tick, so
    each tick's resubmits land and then die). Without backoff that is one
    replacement round per second; with the default threshold of 3 rounds
    per window, round 4 is pushed out exponentially.
    """
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()

    def kill_all():
        for pod in app.pods():
            api.delete_pod(pod.name, reason="node-failure")

    engine.every(1.0, kill_all, priority=10)
    engine.run_until(10.0)
    # Rounds land at t=2,3,4 (threshold hit -> 5 s backoff), then t=9.
    assert app.crash_loop_backoffs >= 1
    # Hot resubmission would have burned ~18 replacements by now.
    assert app.replacements <= 8


def test_heal_absorbs_actuation_outage(engine, api):
    """Resubmits during an API outage are swallowed and retried later,
    and the failed attempts do not count as crash-loop rounds."""
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    api.delete_pod("svc-0", reason="node-failure")
    faults = ActuationFaultInjector()
    faults.outage(0.0, 5.0)
    api.actuation_faults = faults
    engine.run_until(4.0)
    # Ticks at t=1..4 all hit the outage; the loss is still open.
    assert app.replica_count == 1
    engine.run_until(8.0)
    assert app.replica_count == 2
    assert app.replacements == 1
    assert app.crash_loop_backoffs == 0
    assert faults.injected_failures >= 3
