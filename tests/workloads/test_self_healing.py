"""Unit tests for application self-healing (maintain_replicas)."""

import pytest

from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.workloads.base import Application


ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=10, net_bw=10)


class Dummy(Application):
    def __init__(self, *args, **kwargs):
        kwargs.setdefault("workload_class", WorkloadClass.MICROSERVICE)
        kwargs.setdefault("initial_allocation", ALLOC)
        super().__init__(*args, **kwargs)

    def tick(self, dt, now):
        pass


def test_disabled_by_default(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2)
    app.start()
    api.delete_pod("svc-0", reason="preempted")
    engine.run_until(3.0)
    assert app.replica_count == 1
    assert app.replacements == 0


def test_respawns_lost_replica(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    api.delete_pod("svc-0", reason="preempted")
    engine.run_until(3.0)
    assert app.replica_count == 2
    assert app.replacements == 1
    # The replacement got a fresh name.
    assert {p.name for p in app.pods()} == {"svc-1", "svc-2"}


def test_respawn_uses_current_target_allocation(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=1, maintain_replicas=True)
    app.start()
    app.set_target_allocation(ALLOC.replace(cpu=3))
    api.delete_pod("svc-0", reason="node-failure")
    engine.run_until(3.0)
    replacement = app.pods()[0]
    assert replacement.allocation.cpu == 3


def test_scale_down_not_fought(engine, api):
    """Self-healing honors the autoscaler's desired count, not history."""
    app = Dummy("svc", engine, api, initial_replicas=3, maintain_replicas=True)
    app.start()
    app.scale_to(1)
    engine.run_until(5.0)
    assert app.replica_count == 1
    assert app.replacements == 0


def test_no_respawn_after_stop(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=2, maintain_replicas=True)
    app.start()
    app.stop()
    engine.run_until(10.0)
    assert app.replica_count == 0


def test_multiple_losses_all_replaced(engine, api):
    app = Dummy("svc", engine, api, initial_replicas=3, maintain_replicas=True)
    app.start()
    for name in ("svc-0", "svc-1", "svc-2"):
        api.delete_pod(name, reason="node-failure")
    engine.run_until(3.0)
    assert app.replica_count == 3
    assert app.replacements == 3
    assert all(p.phase == PodPhase.PENDING for p in app.pods())
