"""Unit tests for the open-loop arrival library."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    CorrelatedSurge,
    DiurnalModulator,
    LognormalSizes,
    MarkedArrivals,
    MMPPArrivals,
    ParetoSizes,
    PoissonArrivals,
    SpikeModulator,
    trace_integral,
)
from repro.workloads.traces import ConstantTrace, DiurnalTrace, StepTrace


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestTraceIntegral:
    def test_constant(self):
        assert trace_integral(ConstantTrace(5.0), 0.0, 100.0) == pytest.approx(
            500.0
        )

    def test_step(self):
        trace = StepTrace([(50.0, 10.0)], initial=2.0)
        assert trace_integral(trace, 0.0, 100.0) == pytest.approx(
            600.0, rel=0.02
        )

    def test_empty_window(self):
        assert trace_integral(ConstantTrace(5.0), 10.0, 10.0) == 0.0


class TestPoissonArrivals:
    def test_events_sorted_within_window(self):
        proc = PoissonArrivals(ConstantTrace(20.0), _rng(1))
        events = proc.window(100.0, 200.0)
        assert len(events) > 0
        assert np.all(np.diff(events) >= 0)
        assert events[0] >= 100.0
        assert events[-1] < 200.0

    def test_zero_rate_yields_no_events(self):
        proc = PoissonArrivals(ConstantTrace(0.0), _rng(1))
        assert len(proc.window(0.0, 1000.0)) == 0

    def test_empty_window(self):
        proc = PoissonArrivals(ConstantTrace(5.0), _rng(1))
        assert len(proc.window(10.0, 10.0)) == 0
        assert len(proc.window(10.0, 5.0)) == 0

    def test_thinning_tracks_nonhomogeneous_rate(self):
        # Twice as many events land in the high-rate half of a step.
        trace = StepTrace([(500.0, 40.0)], initial=20.0)
        proc = PoissonArrivals(trace, _rng(2))
        events = proc.window(0.0, 1000.0)
        low = np.sum(events < 500.0)
        high = np.sum(events >= 500.0)
        assert high / low == pytest.approx(2.0, rel=0.15)

    def test_explicit_rate_bound(self):
        proc = PoissonArrivals(ConstantTrace(10.0), _rng(3), rate_bound=10.0)
        events = proc.window(0.0, 500.0)
        assert len(events) == pytest.approx(5000, rel=0.1)


class TestMMPPArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(ConstantTrace(1.0), _rng(), factors=(1.0,))
        with pytest.raises(ValueError):
            MMPPArrivals(ConstantTrace(1.0), _rng(), factors=(-1.0, 1.0))
        with pytest.raises(ValueError):
            MMPPArrivals(ConstantTrace(1.0), _rng(), mean_dwell=0.0)

    def test_factor_path_piecewise_constant(self):
        proc = MMPPArrivals(
            ConstantTrace(10.0), _rng(4), factors=(0.5, 2.0), horizon=1000.0
        )
        factors = {proc.factor_at(t) for t in np.arange(0.0, 1000.0, 1.0)}
        assert factors <= {0.5, 2.0}
        assert len(factors) == 2

    def test_rate_is_modulated_trace(self):
        proc = MMPPArrivals(ConstantTrace(10.0), _rng(5), horizon=500.0)
        t = 123.0
        assert proc.rate(t) == pytest.approx(10.0 * proc.factor_at(t))

    def test_last_state_holds_beyond_horizon(self):
        proc = MMPPArrivals(ConstantTrace(10.0), _rng(6), horizon=100.0)
        assert proc.factor_at(1e9) == proc.factor_at(200.0)


class TestSizeDistributions:
    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            ParetoSizes(alpha=1.0)
        with pytest.raises(ValueError):
            ParetoSizes(x_min=0.0)

    def test_pareto_support_and_mean(self):
        sizes = ParetoSizes(alpha=2.5, x_min=2.0)
        draws = sizes.sample(_rng(7), 5000)
        assert np.all(draws >= 2.0)
        assert np.mean(draws) == pytest.approx(sizes.mean(), rel=0.1)
        assert sizes.mean() == pytest.approx(2.5 * 2.0 / 1.5)

    def test_lognormal_mean_and_cv(self):
        sizes = LognormalSizes(mean=4.0, cv=0.5)
        draws = sizes.sample(_rng(8), 20000)
        assert sizes.mean() == 4.0
        assert np.mean(draws) == pytest.approx(4.0, rel=0.05)
        assert np.std(draws) / np.mean(draws) == pytest.approx(0.5, rel=0.1)


class TestMarkedArrivals:
    def test_marks_align_with_events(self):
        marked = MarkedArrivals(
            PoissonArrivals(ConstantTrace(10.0), _rng(9)),
            ParetoSizes(alpha=1.6),
            _rng(10),
        )
        times, sizes = marked.window_marked(0.0, 100.0)
        assert len(times) == len(sizes)
        assert len(times) > 0
        assert np.all(sizes >= 1.0)
        assert marked.mean_size() == ParetoSizes(alpha=1.6).mean()

    def test_unmarked_window_passthrough(self):
        proc = PoissonArrivals(ConstantTrace(10.0), _rng(11))
        twin = PoissonArrivals(ConstantTrace(10.0), _rng(11))
        marked = MarkedArrivals(proc, ParetoSizes(), _rng(12))
        np.testing.assert_array_equal(
            marked.window(0.0, 50.0), twin.window(0.0, 50.0)
        )


class TestModulators:
    def test_diurnal_modulator_scales_base_trace(self):
        mod = DiurnalModulator(
            ConstantTrace(100.0), amplitude=0.5, period=1000.0
        )
        rates = [mod.rate(t) for t in np.arange(0.0, 1000.0, 10.0)]
        assert max(rates) == pytest.approx(150.0, rel=0.05)
        assert min(rates) == pytest.approx(50.0, rel=0.05)

    def test_spike_modulator_rises_and_decays(self):
        mod = SpikeModulator(
            ConstantTrace(10.0), [(100.0, 5.0, 10.0, 50.0)]
        )
        assert mod.rate(50.0) == pytest.approx(10.0)
        assert mod.rate(115.0) > 30.0  # deep inside the spike
        assert mod.rate(1000.0) == pytest.approx(10.0, rel=0.05)

    def test_spike_modulator_validation(self):
        with pytest.raises(ValueError):
            SpikeModulator(ConstantTrace(1.0), [(0.0, 0.5, 10.0, 50.0)])


class TestCorrelatedSurge:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedSurge(_rng(), horizon=0.0)
        with pytest.raises(ValueError):
            CorrelatedSurge(_rng(), horizon=100.0, factor=0.5)
        with pytest.raises(ValueError):
            CorrelatedSurge(_rng(), horizon=100.0, max_lag=-1.0)

    def test_windows_inside_horizon(self):
        surge = CorrelatedSurge(
            _rng(13), horizon=5000.0, mean_interval=400.0, duration=60.0
        )
        windows = surge.windows()
        assert len(windows) >= 2
        for start, end in windows:
            assert 0.0 < start < 5000.0
            assert end == start + 60.0

    def test_active_matches_windows(self):
        surge = CorrelatedSurge(
            _rng(14), horizon=2000.0, mean_interval=300.0, duration=45.0
        )
        start, end = surge.windows()[0]
        assert surge.active((start + end) / 2)
        assert not surge.active(start - 1.0)

    def test_attached_traces_surge_together(self):
        surge = CorrelatedSurge(
            _rng(15), horizon=2000.0, mean_interval=300.0, duration=45.0
        )
        a = surge.attach(ConstantTrace(10.0), name="a")
        b = surge.attach(ConstantTrace(20.0), name="b", factor=2.0)
        start, end = surge.windows()[0]
        mid = (start + end) / 2
        assert a.rate(mid) == pytest.approx(30.0)  # default factor 3
        assert b.rate(mid) == pytest.approx(40.0)
        assert a.rate(start - 1.0) == pytest.approx(10.0)
        assert surge.attached == ["a", "b"]

    def test_lag_shifts_the_window(self):
        surge = CorrelatedSurge(
            _rng(16), horizon=2000.0, mean_interval=300.0, duration=45.0
        )
        lagged = surge.attach(ConstantTrace(10.0), name="lag", lag=30.0)
        start, _end = surge.windows()[0]
        assert lagged.rate(start + 1.0) == pytest.approx(10.0)
        assert lagged.rate(start + 31.0) == pytest.approx(30.0)
