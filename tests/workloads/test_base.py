"""Unit tests for the Application driver base."""

import pytest

from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.workloads.base import Application


ALLOC = ResourceVector(cpu=1, memory=1, disk_bw=10, net_bw=10)


class TickCounter(Application):
    """Minimal concrete app recording its ticks."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("workload_class", WorkloadClass.MICROSERVICE)
        kwargs.setdefault("initial_allocation", ALLOC)
        super().__init__(*args, **kwargs)
        self.ticks = []

    def tick(self, dt, now):
        self.ticks.append((dt, now))


def bind_all(api, engine):
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    engine.run_until(engine.now + 6.0)


def test_start_submits_initial_replicas(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=3)
    app.start()
    assert len(api.pending_pods()) == 3
    assert app.replica_count == 3
    assert [p.name for p in app.pods()] == ["svc-0", "svc-1", "svc-2"]


def test_double_start_rejected(engine, api):
    app = TickCounter("svc", engine, api)
    app.start()
    with pytest.raises(RuntimeError):
        app.start()


def test_tick_cadence_and_dt(engine, api):
    app = TickCounter("svc", engine, api, tick_interval=2.0)
    app.start()
    engine.run_until(6.0)
    assert len(app.ticks) == 3
    assert all(dt == 2.0 for dt, _now in app.ticks)


def test_scale_up_and_down(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=1)
    app.start()
    app.scale_to(3)
    assert app.replica_count == 3
    app.scale_to(1)
    assert app.replica_count == 1
    # Newest pods were deleted.
    assert api.get_pod("svc-2").phase == PodPhase.EVICTED
    assert api.get_pod("svc-0").phase == PodPhase.PENDING


def test_scale_to_negative_rejected(engine, api):
    app = TickCounter("svc", engine, api)
    app.start()
    with pytest.raises(ValueError):
        app.scale_to(-1)


def test_running_pods_after_bind(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=2)
    app.start()
    bind_all(api, engine)
    assert len(app.running_pods()) == 2


def test_set_target_allocation_resizes_running(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=2)
    app.start()
    bind_all(api, engine)
    new_alloc = ALLOC.replace(cpu=2)
    accepted = app.set_target_allocation(new_alloc)
    assert accepted == 2
    engine.run_until(engine.now + 2.0)
    assert all(p.allocation.cpu == 2 for p in app.running_pods())
    assert app.current_allocation().cpu == 2


def test_new_replicas_use_target_allocation(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=1)
    app.start()
    app.set_target_allocation(ALLOC.replace(cpu=4))
    app.scale_to(2)
    assert api.get_pod("svc-1").allocation.cpu == 4


def test_current_allocation_falls_back_to_target(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=0)
    app.start()
    assert app.current_allocation() == ALLOC


def test_prune_externally_evicted_pods(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=2)
    app.start()
    api.delete_pod("svc-0", reason="preempted")
    engine.run_until(2.0)  # a tick prunes
    assert app.replica_count == 1


def test_stop_deletes_pods(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=2)
    app.start()
    engine.run_until(3.0)
    ticks_before = len(app.ticks)
    app.stop()
    engine.run_until(10.0)
    assert len(app.ticks) == ticks_before
    assert app.finished
    assert all(p.phase == PodPhase.EVICTED for p in api.list_pods(app="svc"))


def test_sample_metrics_aggregates(engine, api):
    app = TickCounter("svc", engine, api, initial_replicas=2)
    app.start()
    bind_all(api, engine)
    for pod in app.running_pods():
        pod.record_usage(ResourceVector(cpu=0.5))
    metrics = app.sample_metrics(engine.now)
    assert metrics["running_replicas"] == 2.0
    assert metrics["alloc/cpu"] == 2.0
    assert metrics["usage/cpu"] == pytest.approx(1.0)


def test_metric_prefix(engine, api):
    assert TickCounter("svc", engine, api).metric_prefix() == "app/svc"
