"""Boundary-condition regression tests for the bisect-backed traces.

StepTrace and ReplayTrace moved from a linear scan to ``bisect``; these
tests pin the exact edge semantics that rewrite must preserve: queries
exactly at a step time, queries before the first step, duplicate step
times, degenerate single-sample specs, and the rejection of NaN /
infinite / negative inputs that the old scan silently mishandled.
"""

import math

import pytest

from repro.workloads.traces import ReplayTrace, StepTrace


class TestStepTraceBoundaries:
    def test_query_exactly_at_step_time(self):
        trace = StepTrace([(10.0, 5.0), (20.0, 2.0)], initial=1.0)
        # The step takes effect *at* its own timestamp.
        assert trace.rate(10.0) == 5.0
        assert trace.rate(20.0) == 2.0

    def test_query_infinitesimally_before_step(self):
        trace = StepTrace([(10.0, 5.0)], initial=1.0)
        assert trace.rate(math.nextafter(10.0, 0.0)) == 1.0

    def test_before_first_step_returns_initial(self):
        trace = StepTrace([(10.0, 5.0)], initial=3.0)
        assert trace.rate(0.0) == 3.0
        assert trace.rate(-1e9) == 3.0

    def test_initial_defaults_to_zero(self):
        trace = StepTrace([(10.0, 5.0)])
        assert trace.rate(5.0) == 0.0

    def test_empty_steps_is_flat_initial(self):
        trace = StepTrace([], initial=7.0)
        assert trace.rate(0.0) == 7.0
        assert trace.rate(1e9) == 7.0

    def test_single_step_at_zero(self):
        trace = StepTrace([(0.0, 4.0)], initial=1.0)
        assert trace.rate(0.0) == 4.0
        assert trace.rate(-0.001) == 1.0

    def test_duplicate_step_times_last_wins(self):
        # Two steps at the same instant: the later entry in the spec
        # wins, matching the old linear scan's behaviour.
        trace = StepTrace([(10.0, 5.0), (10.0, 9.0)], initial=1.0)
        assert trace.rate(10.0) == 9.0
        assert trace.rate(11.0) == 9.0

    def test_far_future_holds_last_rate(self):
        trace = StepTrace([(10.0, 5.0), (20.0, 2.0)])
        assert trace.rate(1e18) == 2.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            StepTrace([(20.0, 1.0), (10.0, 2.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            StepTrace([(10.0, -0.001)])
        with pytest.raises(ValueError):
            StepTrace([(10.0, 5.0)], initial=-1.0)

    def test_nan_time_rejected(self):
        # A NaN time defeats any sortedness check based on pairwise
        # comparison unless the check is NaN-safe; the bisect lookup
        # would then return arbitrary indices. Must be a load error.
        with pytest.raises(ValueError):
            StepTrace([(float("nan"), 1.0)])
        with pytest.raises(ValueError):
            StepTrace([(10.0, 1.0), (float("nan"), 2.0), (20.0, 3.0)])

    def test_nan_and_inf_rate_rejected(self):
        with pytest.raises(ValueError):
            StepTrace([(10.0, float("nan"))])
        with pytest.raises(ValueError):
            StepTrace([(10.0, float("inf"))])

    def test_inf_time_rejected(self):
        with pytest.raises(ValueError):
            StepTrace([(float("inf"), 1.0)])


class TestReplayTraceBoundaries:
    def test_query_exactly_at_sample_time(self):
        trace = ReplayTrace([(0.0, 1.0), (10.0, 5.0)])
        assert trace.rate(10.0) == 5.0
        assert trace.rate(math.nextafter(10.0, 0.0)) == 1.0

    def test_before_first_sample_holds_first_rate(self):
        trace = ReplayTrace([(100.0, 5.0), (200.0, 9.0)])
        assert trace.rate(0.0) == 5.0
        assert trace.rate(-50.0) == 5.0

    def test_after_last_sample_holds_last_rate(self):
        trace = ReplayTrace([(0.0, 1.0), (10.0, 5.0)])
        assert trace.rate(1e18) == 5.0

    def test_single_sample_is_constant(self):
        trace = ReplayTrace([(50.0, 3.0)])
        assert trace.rate(0.0) == 3.0
        assert trace.rate(50.0) == 3.0
        assert trace.rate(1e9) == 3.0

    def test_duplicate_sample_times_last_wins(self):
        trace = ReplayTrace([(0.0, 1.0), (10.0, 5.0), (10.0, 8.0)])
        assert trace.rate(10.0) == 8.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            ReplayTrace([(10.0, 1.0), (0.0, 2.0)])

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([(float("nan"), 1.0)])
        with pytest.raises(ValueError):
            ReplayTrace([(0.0, 1.0), (float("nan"), 2.0), (10.0, 3.0)])

    def test_nan_and_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([(0.0, float("nan"))])
        with pytest.raises(ValueError):
            ReplayTrace([(0.0, -1.0)])

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([(0.0, 1.0)], time_scale=0.0)
        with pytest.raises(ValueError):
            ReplayTrace([(0.0, 1.0)], rate_scale=-1.0)
