"""Tests for stream checkpoint/replay fault tolerance."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.workloads.stream import Operator, StreamJob
from repro.workloads.traces import ConstantTrace


ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=100)
FT = DataPlaneConfig(enabled=True)


def deploy(engine, api, *, workers=2, ft=FT, rate=100.0, **kw):
    job = StreamJob(
        "stream", engine, api,
        trace=ConstantTrace(rate),
        operators=[Operator("parse", 0.004), Operator("agg", 0.002)],
        initial_allocation=ALLOC, initial_workers=workers, ft=ft, **kw,
    )
    job.maintain_replicas = True
    job.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    engine.run_until(engine.now + 6.0)
    return job


def assert_conservation(job):
    assert job.total_arrived == pytest.approx(
        job.total_processed + job.lag_events, abs=1e-6
    )


def test_disabled_ft_adds_no_state_or_metrics(engine, api):
    job = deploy(engine, api, ft=DataPlaneConfig(enabled=False))
    engine.run_until(60.0)
    assert job.ft is None
    metrics = job.sample_metrics(engine.now)
    assert "checkpoints" not in metrics
    assert "restarts" not in metrics
    assert_conservation(job)


def test_checkpoints_advance_on_schedule(engine, api):
    job = deploy(engine, api)
    engine.run_until(100.0)
    # Default interval is 30 s; ~100 s of run time → 3-4 barriers.
    assert 3 <= job.checkpoints <= 4
    assert job.last_checkpoint_at > 0.0
    metrics = job.sample_metrics(engine.now)
    assert metrics["checkpoint_age"] == engine.now - job.last_checkpoint_at
    assert_conservation(job)


def test_worker_loss_rolls_back_to_checkpoint(engine, api):
    job = deploy(engine, api)
    engine.run_until(100.0)
    processed_before = job.total_processed
    ckpt = job._ckpt_processed
    assert processed_before > ckpt
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="worker-kill")
    engine.run_until(103.0)
    assert job.restarts == 1
    # Everything processed past the barrier was replayed into the lag.
    assert job.replayed_total == pytest.approx(processed_before - ckpt)
    assert job.total_processed == pytest.approx(ckpt)
    assert job.lag_events >= job.replayed_total
    assert_conservation(job)


def test_restore_window_stalls_processing(engine, api):
    ft = DataPlaneConfig(enabled=True, restore_delay=10.0)
    job = deploy(engine, api, ft=ft)
    engine.run_until(100.0)
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="worker-kill")
    engine.run_until(105.0)
    # Mid-restore: workers are up but rebuilding operator state.
    assert engine.now < job._restore_until
    assert job.current_rate == 0.0
    # After the restore window the pipeline drains its backlog.
    engine.run_until(200.0)
    assert job.current_rate > 0.0
    assert job.lag_events == pytest.approx(0.0, abs=1.0)
    assert_conservation(job)


def test_backlog_recovers_after_restart(engine, api):
    job = deploy(engine, api)
    engine.run_until(100.0)
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="worker-kill")
    engine.run_until(300.0)
    # Ample spare capacity: the replayed backlog fully drains and the
    # watermark catches back up.
    assert job.lag_events == pytest.approx(0.0, abs=1.0)
    assert job.current_lag_seconds < 1.0
    assert job.restarts == 1
    assert_conservation(job)
