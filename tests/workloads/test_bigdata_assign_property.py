"""Property tests for executor assignment (hypothesis).

``BigDataJob._assign_executors`` is the one piece of scheduling logic
shared verbatim between the fluid model and the fault-tolerant
task-granular engine, so its invariants are load-bearing twice over:

* no stage ever receives more executors than its ``max_parallelism``;
* the assignment is work-conserving — executors idle only once every
  runnable stage is saturated;
* filling is balanced — stages that never hit their cap end within one
  executor of each other;
* the result is a pure function of its inputs (determinism is what the
  seeded-replay contract of the whole simulator rests on).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.bigdata import BigDataJob, Stage


class _FakePod:
    """Assignment only reads ``pod.name``; a stub keeps the test pure."""

    def __init__(self, name: str):
        self.name = name


def _assign(stages, pods):
    # _assign_executors never touches self: call it unbound so the
    # property holds for any job configuration.
    return BigDataJob._assign_executors(None, stages, pods)


def _make_stages(caps):
    return [
        Stage(f"s{i}", 100.0, max_parallelism=cap)
        for i, cap in enumerate(caps)
    ]


stage_lists = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=5
).map(_make_stages)

pod_lists = st.integers(min_value=0, max_value=24).map(
    lambda n: [_FakePod(f"exec-{i}") for i in range(n)]
)


@settings(max_examples=200, deadline=None)
@given(stages=stage_lists, pods=pod_lists)
def test_assignment_invariants(stages, pods):
    assignment = _assign(stages, pods)

    counts = {s.name: 0 for s in stages}
    for stage in assignment.values():
        counts[stage.name] += 1

    # Parallelism caps are hard limits.
    for s in stages:
        assert counts[s.name] <= s.max_parallelism

    # Work conservation: every executor is assigned until the stages
    # collectively saturate; only then do leftovers idle.
    capacity = sum(s.max_parallelism for s in stages)
    assert len(assignment) == min(len(pods), capacity)

    # Executors are consumed in order: exactly the first k pods run.
    expected = [p.name for p in pods[: len(assignment)]]
    assert sorted(assignment) == sorted(expected)

    # Balance: stages still below their cap at the end were available
    # to every round of the fill, so min-first keeps them within one.
    open_counts = [
        counts[s.name] for s in stages if counts[s.name] < s.max_parallelism
    ]
    if open_counts:
        assert max(open_counts) - min(open_counts) <= 1

    # Determinism: same inputs, same assignment, object-for-object.
    again = _assign(stages, pods)
    assert {p: s.name for p, s in again.items()} == {
        p: s.name for p, s in assignment.items()
    }
