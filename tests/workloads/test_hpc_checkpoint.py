"""Tests for HPC checkpoint/rollback on rank loss."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.workloads.hpc import HPCJob


ALLOC = ResourceVector(cpu=4, memory=8, disk_bw=10, net_bw=100)


def submit(engine, api, **kw):
    job = HPCJob(
        "mpi", engine, api, ranks=2, duration=200.0, allocation=ALLOC, **kw
    )
    job.maintain_replicas = True
    job.start()
    bind_all(engine, api)
    return job


def bind_all(engine, api):
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)])
    engine.run_until(engine.now + 6.0)


def test_invalid_checkpoint_interval(engine, api):
    with pytest.raises(ValueError):
        HPCJob("j", engine, api, ranks=1, duration=10, allocation=ALLOC,
               checkpoint_interval=0)


def test_checkpoint_advances_with_progress(engine, api):
    job = submit(engine, api, checkpoint_interval=50.0)
    engine.run_until(86.0)  # ~80 s of progress → past checkpoint at 50 s
    assert job.progress > 0.25
    assert job.last_checkpoint == pytest.approx(0.25, abs=0.01)


def test_rank_loss_rolls_back_to_checkpoint(engine, api):
    job = submit(engine, api, checkpoint_interval=50.0)
    engine.run_until(86.0)  # progress ≈ 0.40, checkpoint = 0.25
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="preempted")
    engine.run_until(88.0)  # tick detects the loss
    assert job.rollbacks == 1
    assert job.progress == pytest.approx(0.25, abs=0.01)


def test_no_checkpointing_restarts_from_zero(engine, api):
    job = submit(engine, api)  # checkpoint_interval=None
    engine.run_until(86.0)
    assert job.progress > 0.3
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="node-failure")
    engine.run_until(88.0)
    assert job.rollbacks == 1
    assert job.progress == 0.0


def test_job_still_finishes_after_rollback(engine, api):
    job = submit(engine, api, checkpoint_interval=50.0)
    engine.run_until(86.0)
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="preempted")
    # The replacement rank is resubmitted by self-healing; bind it.
    engine.run_until(90.0)
    bind_all(engine, api)
    engine.run_until(600.0)
    assert job.done
    # Makespan exceeds the failure-free 206 s by the rolled-back work.
    assert job.makespan() > 210


def test_checkpointing_beats_restart_under_failure(engine, api):
    from repro.cluster.api import ClusterAPI
    from repro.sim.engine import Engine
    from tests.conftest import make_cluster

    def run(checkpoint_interval):
        eng = Engine()
        api2 = ClusterAPI(make_cluster(eng))
        job = HPCJob(
            "mpi", eng, api2, ranks=2, duration=200.0, allocation=ALLOC,
            checkpoint_interval=checkpoint_interval,
        )
        job.maintain_replicas = True
        job.start()
        nodes = [n.name for n in api2.list_nodes()]
        for i, pod in enumerate(api2.pending_pods()):
            api2.bind_pod(pod.name, nodes[i % len(nodes)])
        eng.run_until(150.0)  # ~144 s of progress
        api2.delete_pod(job.running_pods()[0].name, reason="chaos")
        eng.run_until(155.0)
        for pod in api2.pending_pods():
            api2.bind_pod(pod.name, nodes[0])
        eng.run_until(2000.0)
        assert job.done
        return job.makespan()

    with_ckpt = run(25.0)
    without = run(None)
    assert with_ckpt < without - 50


def test_no_rollback_without_progress(engine, api):
    job = HPCJob("mpi", engine, api, ranks=2, duration=100.0, allocation=ALLOC)
    job.start()
    # Delete a pending rank before the gang ever ran.
    api.delete_pod("mpi-0", reason="preempted")
    engine.run_until(5.0)
    assert job.rollbacks == 0


def test_checkpoint_boundary_reached_within_float_rounding(engine, api):
    # Regression: with duration=51 and interval=30, thirty ticks of
    # 1/51 progress accumulate to 30/51 minus ~2 ulp. Plain truncation
    # of progress/step read that as "boundary not reached" and kept the
    # checkpoint a whole interval back; the tolerance must count it.
    job = HPCJob(
        "mpi", engine, api, ranks=2, duration=51.0, allocation=ALLOC,
        checkpoint_interval=30.0,
    )
    job.maintain_replicas = True
    job.start()
    bind_all(engine, api)
    engine.run_until(35.5)  # 30 progress ticks after the gang forms
    step = 30.0 / 51.0
    assert job.progress == pytest.approx(step, abs=1e-12)
    assert job.last_checkpoint == pytest.approx(step, abs=1e-9)
    assert job.last_checkpoint > 0.0

    # A rank loss right at the boundary loses nothing: the checkpoint
    # equals current progress, so the rollback is a no-op — with the
    # old truncation it would have reset the job a full interval back.
    victim = job.running_pods()[0]
    api.delete_pod(victim.name, reason="preempted")
    engine.run_until(38.0)
    assert job.rollbacks == 0
    assert job.progress >= step - 1e-9
