"""Unit + property tests for load traces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    NoisyTrace,
    RampTrace,
    ScaledTrace,
    StepTrace,
)

times = st.floats(min_value=0, max_value=86_400, allow_nan=False)


class TestConstant:
    def test_value(self):
        assert ConstantTrace(5.0).rate(123) == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantTrace(-1)


class TestStep:
    def test_initial_before_first_step(self):
        trace = StepTrace([(10, 5)], initial=1)
        assert trace.rate(0) == 1
        assert trace.rate(10) == 5
        assert trace.rate(100) == 5

    def test_multiple_steps(self):
        trace = StepTrace([(10, 5), (20, 2)])
        assert trace.rate(15) == 5
        assert trace.rate(25) == 2

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            StepTrace([(20, 1), (10, 2)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            StepTrace([(10, -5)])


class TestRamp:
    def test_endpoints_and_midpoint(self):
        trace = RampTrace(10, 20, 0, 100)
        assert trace.rate(5) == 0
        assert trace.rate(15) == pytest.approx(50)
        assert trace.rate(25) == 100

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RampTrace(10, 10, 0, 1)


class TestDiurnal:
    def test_period_and_amplitude(self):
        trace = DiurnalTrace(base=100, amplitude=50, period=100)
        assert trace.rate(0) == pytest.approx(100)
        assert trace.rate(25) == pytest.approx(150)
        assert trace.rate(75) == pytest.approx(50)

    def test_clipped_at_zero(self):
        trace = DiurnalTrace(base=10, amplitude=100, period=100)
        assert trace.rate(75) == 0.0

    @given(times)
    def test_never_negative(self, t):
        trace = DiurnalTrace(base=10, amplitude=100)
        assert trace.rate(t) >= 0


class TestFlashCrowd:
    def test_zero_before_start(self):
        trace = FlashCrowdTrace(100, peak_rate=50)
        assert trace.rate(99) == 0.0

    def test_rises_then_decays(self):
        trace = FlashCrowdTrace(0, peak_rate=100, rise=10, decay=1000)
        early, peak, late = trace.rate(1), trace.rate(40), trace.rate(5000)
        assert early < peak
        assert late < peak

    @given(times)
    def test_never_negative(self, t):
        trace = FlashCrowdTrace(100, peak_rate=50)
        assert trace.rate(t) >= 0


class TestBursty:
    def test_base_when_no_burst(self):
        rng = np.random.default_rng(1)
        trace = BurstyTrace(10, burst_rate=1e-9, horizon=1000, rng=rng)
        assert trace.rate(500) == 10

    def test_burst_multiplies(self):
        rng = np.random.default_rng(1)
        trace = BurstyTrace(
            10, burst_factor=3, burst_rate=1 / 100, burst_duration=50,
            horizon=10_000, rng=rng,
        )
        assert trace.burst_times, "expected at least one burst"
        t = trace.burst_times[0] + 1
        assert trace.rate(t) == 30

    def test_deterministic_given_rng(self):
        a = BurstyTrace(10, rng=np.random.default_rng(7))
        b = BurstyTrace(10, rng=np.random.default_rng(7))
        assert a.burst_times == b.burst_times


class TestNoisy:
    def test_mean_preserving_roughly(self):
        trace = NoisyTrace(
            ConstantTrace(100), rel_std=0.1, bucket=1, horizon=10_000,
            rng=np.random.default_rng(3),
        )
        values = [trace.rate(t) for t in range(10_000)]
        assert np.mean(values) == pytest.approx(100, rel=0.05)

    def test_beyond_horizon_falls_back_to_base(self):
        trace = NoisyTrace(
            ConstantTrace(100), horizon=100, rng=np.random.default_rng(0)
        )
        assert trace.rate(1e9) == 100

    @given(times)
    def test_never_negative(self, t):
        trace = NoisyTrace(ConstantTrace(5), rng=np.random.default_rng(0))
        assert trace.rate(t) >= 0


class TestComposite:
    def test_sums_components(self):
        trace = CompositeTrace([ConstantTrace(1), ConstantTrace(2)])
        assert trace.rate(0) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeTrace([])


class TestScaled:
    def test_scales(self):
        assert ScaledTrace(ConstantTrace(10), 0.5).rate(0) == 5

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaledTrace(ConstantTrace(1), -1)
