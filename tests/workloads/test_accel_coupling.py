"""Model checks: acceleration interacts correctly with I/O coupling."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import Stage


def hetero():
    return ClusterSpec(groups=(
        NodeGroup("fpga", 2, ResourceVector(cpu=8, memory=32, disk_bw=120,
                                            net_bw=500),
                  labels={"accelerator": "fpga"}),
    ))


def run_stage(stage):
    platform = EvolvePlatform(
        cluster_spec=hetero(), config=PlatformConfig(seed=5),
    )
    job = platform.submit_bigdata(
        "job", stages=[stage],
        allocation=ResourceVector(cpu=4, memory=8, disk_bw=100, net_bw=50),
        executors=2, accelerator="fpga",
    )
    platform.run(4 * 3600.0)
    assert job.done
    return job.makespan()


def test_acceleration_helps_cpu_bound_stage():
    plain = run_stage(Stage("k", 4000.0))
    fast = run_stage(Stage("k", 4000.0, accel_speedup=5.0))
    assert fast < plain / 3


def test_acceleration_cannot_beat_io_bound_stage():
    """Amdahl via the min() coupling: an input-bound stage gains nothing
    from a faster compute kernel."""
    # Input 80 GB over 2×100 MB/s ⇒ 400 s; work 400 cpu-s over 8 cores ⇒ 50 s.
    plain = run_stage(Stage("scan", 400.0, input_mb=80_000))
    accel = run_stage(Stage("scan", 400.0, input_mb=80_000, accel_speedup=5.0))
    assert accel == pytest.approx(plain, rel=0.05)


def test_acceleration_partial_on_mixed_stage():
    """A stage near the cpu/io crossover gains, but less than the kernel
    speedup."""
    # cpu frac rate 4/2000 = 0.002; io 100/20000 = 0.005 ⇒ cpu-bound ×2.5.
    plain = run_stage(Stage("mix", 2000.0, input_mb=20_000))
    accel = run_stage(Stage("mix", 2000.0, input_mb=20_000, accel_speedup=5.0))
    assert accel < plain
    # But bounded below by the I/O time: 20 GB / (2×100 MB/s) = 100 s.
    assert accel >= 100.0 - 15.0
