"""Unit tests for OU and replay traces."""

import numpy as np
import pytest

from repro.workloads.traces import OUTrace, ReplayTrace


class TestOUTrace:
    def test_reverts_to_mean(self):
        trace = OUTrace(100, relaxation=100, volatility=1.0, step=10,
                        horizon=100_000, rng=np.random.default_rng(4))
        values = [trace.rate(t) for t in range(0, 100_000, 10)]
        assert np.mean(values) == pytest.approx(100, rel=0.1)

    def test_autocorrelated(self):
        """Adjacent samples are much closer than distant ones."""
        trace = OUTrace(100, relaxation=600, volatility=3.0, step=10,
                        horizon=50_000, rng=np.random.default_rng(4))
        values = np.array([trace.rate(t) for t in range(0, 50_000, 10)])
        adjacent = np.mean(np.abs(np.diff(values)))
        shuffled = values.copy()
        np.random.default_rng(0).shuffle(shuffled)
        random_pairs = np.mean(np.abs(np.diff(shuffled)))
        assert adjacent < random_pairs / 2

    def test_never_negative(self):
        trace = OUTrace(5, volatility=10.0, horizon=10_000,
                        rng=np.random.default_rng(1))
        assert all(trace.rate(t) >= 0 for t in range(0, 10_000, 50))

    def test_deterministic_given_rng(self):
        a = OUTrace(50, rng=np.random.default_rng(9), horizon=1000)
        b = OUTrace(50, rng=np.random.default_rng(9), horizon=1000)
        assert [a.rate(t) for t in range(0, 1000, 10)] == \
               [b.rate(t) for t in range(0, 1000, 10)]

    def test_beyond_horizon_holds_last(self):
        trace = OUTrace(50, horizon=100, step=10, rng=np.random.default_rng(0))
        assert trace.rate(1e9) == trace.rate(200)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OUTrace(-1)
        with pytest.raises(ValueError):
            OUTrace(1, relaxation=0)


class TestReplayTrace:
    def test_step_interpolation(self):
        trace = ReplayTrace([(0, 10), (100, 20), (200, 5)])
        assert trace.rate(-5) == 10    # before first sample
        assert trace.rate(0) == 10
        assert trace.rate(99) == 10
        assert trace.rate(100) == 20
        assert trace.rate(1000) == 5   # after last sample

    def test_scaling(self):
        trace = ReplayTrace([(0, 10), (100, 20)], time_scale=2.0, rate_scale=3.0)
        assert trace.rate(150) == 30   # sample time 100 → 200
        assert trace.rate(250) == 60

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([(10, 1), (5, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ReplayTrace([(0, -1)])

    def test_from_csv(self, tmp_path):
        csv = tmp_path / "trace.csv"
        csv.write_text("time,rate\n0,100\n60,150\n\n120,80\n")
        trace = ReplayTrace.from_csv(str(csv))
        assert trace.rate(30) == 100
        assert trace.rate(61) == 150
        assert trace.rate(500) == 80

    def test_from_csv_custom_columns(self, tmp_path):
        csv = tmp_path / "trace.tsv"
        csv.write_text("100\t0\n200\t60\n")
        trace = ReplayTrace.from_csv(
            str(csv), time_column=1, rate_column=0,
            delimiter="\t", skip_header=False,
        )
        assert trace.rate(0) == 100
        assert trace.rate(60) == 200

    def test_drives_a_service(self, engine, api):
        """Replay traces plug into the workload model like any other."""
        from repro.cluster.resources import ResourceVector
        from repro.workloads.microservice import Microservice, ServiceDemands

        svc = Microservice(
            "svc", engine, api,
            trace=ReplayTrace([(0, 50), (30, 100)]),
            demands=ServiceDemands(cpu_seconds=0.001, base_latency=0.01),
            initial_allocation=ResourceVector(cpu=2, memory=2, disk_bw=10, net_bw=10),
        )
        svc.start()
        for pod in api.pending_pods():
            api.bind_pod(pod.name, "node-0")
        engine.run_until(20.0)
        assert svc.current_offered == 50
        engine.run_until(40.0)
        assert svc.current_offered == 100
