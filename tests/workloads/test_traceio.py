"""Trace-file schema, loader, and replayer tests — including the
golden-replay fingerprint pinned against a committed miniature trace."""

from pathlib import Path

import numpy as np
import pytest

from repro.workloads.arrivals import trace_integral
from repro.workloads.traceio import (
    SCHEMA,
    LoadedTrace,
    TraceReplayer,
    TraceSchemaError,
    event_fingerprint,
    load_trace,
)
from repro.workloads.traces import ConstantTrace, DiurnalTrace

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden_trace.json"

#: Pinned fingerprint of the deterministic replay of the committed
#: golden trace over [0, 120). Any change to the schema parser, the
#: ReplayTrace step interpolation, or the replayer's integral inversion
#: shifts at least one event and breaks this hash — that is the point.
GOLDEN_FINGERPRINT = (
    "70243ebedf84602d4a641060cc09736db95d57a95b3b337c55be7cc4c928f727"
)
GOLDEN_EVENTS = 678


def _write_json(tmp_path, body: str) -> Path:
    path = tmp_path / "trace.json"
    path.write_text(body)
    return path


class TestLoadJson:
    def test_loads_schema_and_metadata(self):
        loaded = load_trace(GOLDEN)
        assert loaded.schema == SCHEMA
        assert loaded.name == "golden-mini"
        assert loaded.unit == "rps"
        assert loaded.meta == {"source": "synthetic"}
        assert loaded.duration == 110.0
        assert loaded.samples[0] == (0.0, 2.0)

    def test_unknown_schema_rejected(self, tmp_path):
        path = _write_json(
            tmp_path, '{"schema": "repro.trace/v9", "samples": [[0, 1]]}'
        )
        with pytest.raises(TraceSchemaError, match="v9"):
            load_trace(path)

    def test_missing_schema_rejected(self, tmp_path):
        path = _write_json(tmp_path, '{"samples": [[0, 1]]}')
        with pytest.raises(TraceSchemaError):
            load_trace(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = _write_json(tmp_path, "{nope")
        with pytest.raises(TraceSchemaError, match="invalid JSON"):
            load_trace(path)

    @pytest.mark.parametrize(
        "samples",
        [
            "[]",
            "[[0, 1, 2]]",
            "[[0, -1]]",
            "[[10, 1], [0, 2]]",
            '[[0, "NaN"]]',
            '[[0, "Infinity"]]',
        ],
    )
    def test_bad_samples_rejected(self, tmp_path, samples):
        path = _write_json(
            tmp_path,
            f'{{"schema": "{SCHEMA}", "samples": {samples}}}',
        )
        with pytest.raises(TraceSchemaError):
            load_trace(path)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("whatever")
        with pytest.raises(TraceSchemaError, match="extension"):
            load_trace(path)


class TestLoadCsv:
    def test_header_then_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,rate\n0,5\n30,10\n\n60,2.5\n")
        loaded = load_trace(path)
        assert loaded.samples == ((0.0, 5.0), (30.0, 10.0), (60.0, 2.5))
        assert loaded.name == "trace"

    def test_header_required(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,5\n30,10\n")
        with pytest.raises(TraceSchemaError, match="header"):
            load_trace(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,rate\n0,5,9\n")
        with pytest.raises(TraceSchemaError, match="malformed"):
            load_trace(path)


class TestLoadedTrace:
    def test_trace_scaling(self):
        loaded = LoadedTrace("x", ((0.0, 10.0), (100.0, 20.0)))
        trace = loaded.trace(time_scale=2.0, rate_scale=0.5)
        assert trace.rate(0.0) == 5.0
        # Step interpolation: the first rate holds until the second
        # sample, which lands at 200s after stretching.
        assert trace.rate(199.0) == 5.0
        assert trace.rate(200.0) == 10.0


class TestGoldenReplay:
    def test_pinned_fingerprint(self):
        replayer = TraceReplayer(load_trace(GOLDEN))
        events = replayer.events(0.0, 120.0)
        assert len(events) == GOLDEN_EVENTS
        assert replayer.fingerprint(0.0, 120.0) == GOLDEN_FINGERPRINT

    def test_count_matches_integral(self):
        loaded = load_trace(GOLDEN)
        expected = trace_integral(loaded.trace(), 0.0, 120.0)
        events = TraceReplayer(loaded).events(0.0, 120.0)
        assert abs(len(events) - expected) <= 1.0

    def test_no_events_in_zero_rate_gap(self):
        # Samples pin the rate to zero over [50, 70).
        events = TraceReplayer(load_trace(GOLDEN)).events(0.0, 120.0)
        assert not [t for t in events if 50.5 < t < 69.5]


class TestTraceReplayer:
    def test_contiguous_windows_stitch(self):
        loaded = load_trace(GOLDEN)
        one_shot = TraceReplayer(loaded).events(0.0, 120.0)
        windowed = TraceReplayer(loaded)
        chunks = [windowed.window(a, a + 15.0) for a in np.arange(0, 120, 15)]
        stitched = np.concatenate(chunks)
        np.testing.assert_allclose(stitched, one_shot)

    def test_non_contiguous_window_resets_phase(self):
        replayer = TraceReplayer(ConstantTrace(1.0))
        first = replayer.window(0.0, 10.0)
        jumped = replayer.window(100.0, 110.0)
        np.testing.assert_allclose(jumped - 100.0, first)

    def test_arbitrary_load_trace_source(self):
        trace = DiurnalTrace(base=5.0, amplitude=3.0, period=600.0)
        events = TraceReplayer(trace, step=0.5).events(0.0, 600.0)
        expected = trace_integral(trace, 0.0, 600.0, step=0.5)
        assert abs(len(events) - expected) <= 1.5

    def test_poisson_mode_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            TraceReplayer(ConstantTrace(1.0), mode="poisson")

    def test_poisson_mode_seeded(self):
        loaded = load_trace(GOLDEN)
        a = TraceReplayer(
            loaded, mode="poisson", rng=np.random.default_rng(3)
        ).window(0.0, 120.0)
        b = TraceReplayer(
            loaded, mode="poisson", rng=np.random.default_rng(3)
        ).window(0.0, 120.0)
        np.testing.assert_array_equal(a, b)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            TraceReplayer(ConstantTrace(1.0), mode="exact")

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            TraceReplayer(ConstantTrace(1.0), step=0.0)


class TestEventFingerprint:
    def test_stable_across_containers(self):
        assert event_fingerprint([1.0, 2.5]) == event_fingerprint(
            np.array([1.0, 2.5])
        )

    def test_rounding_bounds_float_noise(self):
        assert event_fingerprint([1.0]) == event_fingerprint([1.0 + 1e-9])
        assert event_fingerprint([1.0]) != event_fingerprint([1.0 + 1e-5])
