"""Unit tests for PLOs and violation tracking."""

import pytest

from repro.workloads.plo import (
    DeadlinePLO,
    LatencyPLO,
    PLOStatus,
    ThroughputPLO,
    ViolationTracker,
)


class TestLatencyPLO:
    def test_unknown_without_series(self, engine, collector):
        plo = LatencyPLO(0.1)
        status = plo.evaluate(collector, "svc", 100.0)
        assert status.measured is None
        assert not status.violated

    def test_violation_and_error_sign(self, engine, collector):
        plo = LatencyPLO(0.1, window=30)
        engine.run_until(10.0)
        collector.record("app/svc/latency", 0.2)
        status = plo.evaluate(collector, "svc", 10.0)
        assert status.violated
        assert status.ratio == pytest.approx(2.0)
        assert status.error == pytest.approx(1.0)

    def test_overachieving_negative_error(self, engine, collector):
        plo = LatencyPLO(0.1)
        engine.run_until(5.0)
        collector.record("app/svc/latency", 0.05)
        status = plo.evaluate(collector, "svc", 5.0)
        assert not status.violated
        assert status.error == pytest.approx(-0.5)

    def test_percentile_uses_tail(self, engine, collector):
        plo = LatencyPLO(0.1, percentile=99, window=100)
        for i in range(49):
            engine.run_until(float(i + 1))
            collector.record("app/svc/latency", 0.05)
        engine.run_until(50.0)
        collector.record("app/svc/latency", 0.5)
        # Nearest-rank p99 of 50 samples picks the maximum.
        status = plo.evaluate(collector, "svc", 50.0)
        assert status.violated

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            LatencyPLO(0)


class TestThroughputPLO:
    def test_underdelivering_violates(self, engine, collector):
        plo = ThroughputPLO(100)
        engine.run_until(5.0)
        collector.record("app/svc/throughput", 50.0)
        status = plo.evaluate(collector, "svc", 5.0)
        assert status.violated
        assert status.ratio == pytest.approx(2.0)

    def test_meeting_target_ok(self, engine, collector):
        plo = ThroughputPLO(100)
        engine.run_until(5.0)
        collector.record("app/svc/throughput", 150.0)
        status = plo.evaluate(collector, "svc", 5.0)
        assert not status.violated
        assert status.error < 0

    def test_zero_measured_is_infinite_ratio(self, engine, collector):
        plo = ThroughputPLO(100)
        engine.run_until(5.0)
        collector.record("app/svc/throughput", 0.0)
        status = plo.evaluate(collector, "svc", 5.0)
        assert status.violated
        assert status.ratio == float("inf")


class TestDeadlinePLO:
    def test_on_track_not_violated(self, engine, collector):
        plo = DeadlinePLO(100.0)
        engine.run_until(50.0)
        collector.record("app/job/progress", 0.6)  # projected finish ≈ 83s
        status = plo.evaluate(collector, "job", 50.0)
        assert not status.violated

    def test_behind_schedule_violates(self, engine, collector):
        plo = DeadlinePLO(100.0)
        engine.run_until(50.0)
        collector.record("app/job/progress", 0.2)  # projected finish 250s
        status = plo.evaluate(collector, "job", 50.0)
        assert status.violated
        assert status.ratio == pytest.approx(2.5)

    def test_zero_progress_is_infinite(self, engine, collector):
        plo = DeadlinePLO(100.0)
        engine.run_until(10.0)
        collector.record("app/job/progress", 0.0)
        status = plo.evaluate(collector, "job", 10.0)
        assert status.violated

    def test_finished_job_not_violating(self, engine, collector):
        plo = DeadlinePLO(100.0)
        engine.run_until(80.0)
        collector.record("app/job/progress", 1.0)
        status = plo.evaluate(collector, "job", 150.0)
        assert not status.violated

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            DeadlinePLO(5.0, start_time=10.0)


class TestViolationTracker:
    def test_integrates_violation_time(self):
        tracker = ViolationTracker()
        ok = PLOStatus(0.05, 0.1, 0.5, -0.5, False)
        bad = PLOStatus(0.2, 0.1, 2.0, 1.0, True)
        tracker.observe(0.0, ok)
        tracker.observe(10.0, bad)   # 10s observed, violating
        tracker.observe(20.0, ok)    # 10s observed, ok
        assert tracker.observed_seconds == 20.0
        assert tracker.violation_seconds == 10.0
        assert tracker.violation_fraction == pytest.approx(0.5)

    def test_worst_and_mean_ratio(self):
        tracker = ViolationTracker()
        tracker.observe(0.0, PLOStatus(0.1, 0.1, 1.0, 0.0, False))
        tracker.observe(5.0, PLOStatus(0.3, 0.1, 3.0, 2.0, True))
        assert tracker.worst_ratio == 3.0
        assert tracker.mean_ratio == pytest.approx(2.0)

    def test_unknown_status_ignored_in_ratio(self):
        tracker = ViolationTracker()
        tracker.observe(0.0, PLOStatus.unknown(0.1))
        assert tracker.mean_ratio is None
        assert tracker.violation_fraction == 0.0

    def test_empty_tracker(self):
        tracker = ViolationTracker()
        assert tracker.violation_fraction == 0.0
        assert tracker.mean_ratio is None
