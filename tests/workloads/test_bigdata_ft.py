"""Tests for the fault-tolerant big-data task engine.

Covers the PR-7 data-plane machinery: task-granular execution matching
the fluid model fault-free, executor-loss share re-open, lineage
recompute of wiped shuffle outputs, speculative duplicates on
stragglers, retry budgets with quarantine, and the work-conservation
ledger that ties all of it together.
"""

import pytest

from repro.cluster.chaos import FailureInjector
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.workloads.bigdata import BigDataJob, Stage

from tests.conftest import make_cluster
from repro.cluster.api import ClusterAPI
from repro.sim.engine import Engine


ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100)
FT = DataPlaneConfig(enabled=True)


def submit(engine, api, *, stages, executors=2, node="node-0", ft=FT, **kw):
    job = BigDataJob(
        "job", engine, api,
        stages=stages, initial_allocation=ALLOC,
        initial_executors=executors, ft=ft, **kw,
    )
    job.maintain_replicas = True
    job.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, node)
    engine.run_until(engine.now + 6.0)
    return job


def bind_pending(api, node):
    for pod in api.pending_pods():
        api.bind_pod(pod.name, node)


def assert_ledger(job):
    """The conservation identity: retired = useful + spec + waste + reopened."""
    ledger = job.ft_accounting()
    lhs = ledger["retired"]
    rhs = (
        ledger["useful"]
        + ledger["spec_inflight"]
        + ledger["wasted"]
        + ledger["reopened"]
    )
    assert lhs == pytest.approx(rhs, abs=1e-6 * max(1.0, lhs))
    return ledger


class TestDisabledIsInert:
    def test_disabled_config_keeps_fluid_path(self, engine, api):
        job = submit(
            engine, api, stages=[Stage("map", 100.0)],
            ft=DataPlaneConfig(enabled=False),
        )
        assert job.ft is None
        assert job.ft_accounting() is None
        metrics = job.sample_metrics(engine.now)
        assert "ft_reopened_work" not in metrics
        assert "job_failed" not in metrics

    def test_no_fault_makespan_matches_fluid_model(self):
        def run(ft):
            engine = Engine()
            cluster = make_cluster(engine)
            api = ClusterAPI(cluster)
            job = submit(
                engine, api,
                stages=[
                    Stage("scan", 200.0, input_mb=400.0),
                    Stage("agg", 100.0, input_mb=40.0, deps=("scan",)),
                ],
                ft=ft,
            )
            engine.run_until(400.0)
            return job

        fluid = run(None)
        ft = run(FT)
        assert fluid.done and ft.done
        # Task granularity costs nothing without faults: the engines
        # retire identical work per tick and finish together.
        assert ft.completed_at == pytest.approx(fluid.completed_at, abs=1e-9)
        ledger = assert_ledger(ft)
        assert ledger["reopened"] == 0.0
        assert ledger["wasted"] == 0.0
        assert ledger["useful"] == pytest.approx(300.0)


class TestExecutorLoss:
    def test_loss_reopens_only_lost_share(self, engine, api):
        job = submit(engine, api, stages=[Stage("map", 400.0)])
        # t=29 lands mid-task (t=30 would be exactly a task boundary,
        # where the victim holds no in-flight share to lose).
        engine.run_until(29.0)
        victim = job.running_pods()[0]
        api.delete_pod(victim.name, reason="executor-kill")
        engine.run_until(32.0)
        assert job.executor_losses == 1
        # Only the victim's in-flight share re-opened, not the job.
        assert 0.0 < job.ft_reopened_work < 400.0
        assert_ledger(job)
        # Self-healing resubmits; the job still completes.
        bind_pending(api, "node-0")
        engine.run_until(300.0)
        assert job.done and not job.failed
        ledger = assert_ledger(job)
        assert ledger["useful"] == pytest.approx(400.0)
        # Total executor effort exceeds the useful work by the re-opened share.
        assert ledger["retired"] == pytest.approx(400.0 + job.ft_reopened_work)

    def test_backoff_delays_redispatch(self, engine, api):
        ft = DataPlaneConfig(enabled=True, retry_backoff_base=20.0)
        job = submit(engine, api, stages=[Stage("map", 400.0)], ft=ft)
        engine.run_until(29.0)
        victim = job.running_pods()[0]
        api.delete_pod(victim.name, reason="executor-kill")
        engine.run_until(32.0)
        rt = job._runtime["map"]
        assert rt.attempts == 1
        # Unclaimed tasks of the struck stage wait out the backoff
        # (loss detected on the tick after eviction, so ≥ 29 + 20).
        waiting = [t for t in rt.tasks if not t.done and t.runner is None]
        assert waiting
        assert all(t.dispatch_after >= 49.0 for t in waiting)


class TestLineage:
    def test_node_wipe_reopens_upstream_outputs(self, engine, cluster, api):
        job = submit(
            engine, api,
            stages=[
                Stage("scan", 100.0),
                Stage("agg", 300.0, deps=("scan",)),
            ],
        )
        # Let scan finish (outputs land on node-0), agg get underway.
        engine.run_until(60.0)
        assert job._runtime["scan"].done_count() == len(
            job._runtime["scan"].tasks
        )
        assert not job.done
        injector = FailureInjector(cluster)
        injector.fail_node("node-0")
        engine.run_until(65.0)
        # Scan's shuffle output died with node-0 while agg still needs
        # it: lineage re-opens the scan tasks.
        assert job.lineage_recomputes > 0
        assert job._runtime["scan"].done_count() < len(
            job._runtime["scan"].tasks
        )
        assert_ledger(job)
        # Recovery elsewhere: heal the node, rebind, job completes.
        injector.recover_node("node-0")
        bind_pending(api, "node-1")
        engine.run_until(engine.now + 400.0)
        bind_pending(api, "node-1")
        engine.run_until(800.0)
        assert job.done and not job.failed
        ledger = assert_ledger(job)
        assert ledger["useful"] == pytest.approx(400.0)

    def test_terminal_stage_outputs_are_durable(self, engine, cluster, api):
        # A completed job's final outputs have no incomplete dependents;
        # wiping their node must NOT re-open anything.
        job = submit(engine, api, stages=[Stage("map", 100.0)])
        engine.run_until(60.0)
        assert job.done
        FailureInjector(cluster).fail_node("node-0")
        engine.run_until(70.0)
        assert job.lineage_recomputes == 0
        assert job.done


class TestSpeculation:
    def test_straggler_triggers_winning_duplicate(self, engine, cluster, api):
        ft = DataPlaneConfig(
            enabled=True, straggler_patience=2, speculation_quantile=0.25
        )
        job = BigDataJob(
            "job", engine, api,
            stages=[Stage("map", 600.0, max_parallelism=4)],
            initial_allocation=ALLOC, initial_executors=4, ft=ft,
        )
        job.start()
        pods = sorted(api.pending_pods(), key=lambda p: p.name)
        for pod in pods[:3]:
            api.bind_pod(pod.name, "node-0")
        api.bind_pod(pods[3].name, "node-1")
        cluster.get_node("node-1").speed_factor = 0.05
        engine.run_until(300.0)
        assert job.done and not job.failed
        # The slow copy was detected, duplicated, and lost the race.
        assert job.speculative_launched >= 1
        assert job.speculative_wins >= 1
        assert job.ft_wasted_work > 0.0
        ledger = assert_ledger(job)
        assert ledger["useful"] == pytest.approx(600.0)

    def test_no_speculation_without_stragglers(self, engine, api):
        job = submit(
            engine, api,
            stages=[Stage("map", 200.0, max_parallelism=4)],
            executors=4,
        )
        engine.run_until(200.0)
        assert job.done
        assert job.speculative_launched == 0
        assert job.ft_wasted_work == 0.0


class TestQuarantine:
    def test_retry_budget_exhaustion_fails_job(self, engine, api):
        ft = DataPlaneConfig(
            enabled=True, stage_max_attempts=1, retry_backoff_base=1.0
        )
        job = submit(engine, api, stages=[Stage("map", 5000.0)], ft=ft)
        for _ in range(3):
            if job.failed:
                break
            running = job.running_pods()
            if running:
                api.delete_pod(running[0].name, reason="executor-kill")
            engine.run_until(engine.now + 3.0)
            bind_pending(api, "node-0")
            engine.run_until(engine.now + 8.0)
        assert job.failed
        assert job.finished
        assert job.quarantined_stage == "map"
        assert not job.done  # failed, not completed
        assert job.sample_metrics(engine.now)["job_failed"] == 1.0
        # All pods were torn down with the job.
        assert not job.running_pods()
