"""Tests for the BatchBench-style batch mixes: fork-join deadline DAGs,
skewed fan-outs with stragglers, and recurring pipelines."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import (
    fork_join_stages,
    skewed_fanout_stages,
)


def _platform(seed: int = 11, nodes: int = 4) -> EvolvePlatform:
    return EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=nodes),
        config=PlatformConfig(seed=seed),
        scheduler="converged",
        policy="static",
    )


ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=40)


class TestForkJoinStages:
    def test_dag_shape(self):
        stages = fork_join_stages(width=3)
        names = [s.name for s in stages]
        assert names == ["source", "branch-0", "branch-1", "branch-2", "join"]
        by_name = {s.name: s for s in stages}
        assert by_name["source"].deps == ()
        for i in range(3):
            assert by_name[f"branch-{i}"].deps == ("source",)
        assert by_name["join"].deps == ("branch-0", "branch-1", "branch-2")

    def test_width_validation(self):
        with pytest.raises(ValueError):
            fork_join_stages(width=0)

    def test_runs_to_completion_with_deadline(self):
        platform = _platform()
        job = platform.submit_bigdata(
            "etl",
            stages=fork_join_stages(width=3, branch_work=120.0,
                                    source_work=60.0, join_work=40.0),
            allocation=ALLOC,
            executors=3,
            deadline=3600.0,
        )
        platform.run(4000.0)
        assert job.done and not job.failed
        assert job.makespan() is not None


class TestSkewedFanoutStages:
    def test_skew_and_straggler(self):
        rng = np.random.default_rng(5)
        stages = skewed_fanout_stages(rng, fanout=6, base_work=100.0,
                                      straggler_factor=10.0)
        parts = [s for s in stages if s.name.startswith("part-")]
        assert len(parts) == 6
        works = sorted(s.work_cpu_seconds for s in parts)
        # Every branch got at least base work, the straggler dominates.
        assert works[0] >= 100.0
        assert works[-1] >= 10.0 * 100.0

    def test_seed_deterministic(self):
        a = skewed_fanout_stages(np.random.default_rng(9), fanout=5)
        b = skewed_fanout_stages(np.random.default_rng(9), fanout=5)
        assert [(s.name, s.work_cpu_seconds) for s in a] == [
            (s.name, s.work_cpu_seconds) for s in b
        ]

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_fanout_stages(rng, fanout=0)
        with pytest.raises(ValueError):
            skewed_fanout_stages(rng, straggler_factor=0.5)


class TestRecurringPipeline:
    def test_periodic_starts_and_completion(self):
        platform = _platform()
        pipeline = platform.submit_recurring_pipeline(
            "nightly",
            stages_factory=lambda i: fork_join_stages(
                width=2, source_work=40.0, branch_work=80.0, join_work=30.0
            ),
            allocation=ALLOC,
            period=900.0,
            runs=3,
            executors=2,
        )
        platform.run(3600.0)
        assert pipeline.completed_runs == 3
        assert pipeline.failed_runs == 0
        assert [j.name for j in pipeline.jobs] == [
            "nightly-r0", "nightly-r1", "nightly-r2",
        ]
        # Run i cannot finish before its deferred start at i·period.
        for i, job in enumerate(pipeline.jobs):
            assert job.completed_at >= i * 900.0
        assert len(pipeline.makespans()) == 3

    def test_per_run_stages_vary(self):
        platform = _platform()
        rng = platform.rng.stream("workload/etl/mix")
        pipeline = platform.submit_recurring_pipeline(
            "etl",
            stages_factory=lambda i: skewed_fanout_stages(
                rng, fanout=3, base_work=50.0
            ),
            allocation=ALLOC,
            period=600.0,
            runs=2,
        )
        works = [
            tuple(s.work_cpu_seconds for s in job.stages) for job in pipeline.jobs
        ]
        assert works[0] != works[1]

    def test_relative_deadline_attaches_per_run(self):
        platform = _platform()
        pipeline = platform.submit_recurring_pipeline(
            "strict",
            stages_factory=lambda i: fork_join_stages(
                width=2, source_work=40.0, branch_work=80.0, join_work=30.0
            ),
            allocation=ALLOC,
            period=900.0,
            runs=2,
            deadline=600.0,
        )
        platform.run(2700.0)
        assert pipeline.completed_runs == 2
        # Each run met its own (relative) deadline.
        for i, job in enumerate(pipeline.jobs):
            assert job.completed_at <= i * 900.0 + 600.0

    def test_validation(self):
        platform = _platform()
        factory = lambda i: fork_join_stages(width=1)  # noqa: E731
        with pytest.raises(ValueError):
            platform.submit_recurring_pipeline(
                "x", stages_factory=factory, allocation=ALLOC,
                period=0.0, runs=1,
            )
        with pytest.raises(ValueError):
            platform.submit_recurring_pipeline(
                "y", stages_factory=factory, allocation=ALLOC,
                period=10.0, runs=0,
            )
