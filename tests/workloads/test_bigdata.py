"""Unit tests for the big-data DAG job model."""

import pytest

from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.storage.objectstore import ObjectStore
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import BigDataJob, Stage, _validate_dag


ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100)


def submit(engine, api, *, stages, executors=2, node="node-0", **kw):
    job = BigDataJob(
        "job", engine, api,
        stages=stages, initial_allocation=ALLOC, initial_executors=executors, **kw,
    )
    job.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, node)
    engine.run_until(engine.now + 6.0)
    return job


class TestDagValidation:
    def test_topo_order(self):
        stages = [
            Stage("c", 1, deps=("a", "b")),
            Stage("a", 1),
            Stage("b", 1, deps=("a",)),
        ]
        assert [s.name for s in _validate_dag(stages)] == ["a", "b", "c"]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            _validate_dag([Stage("a", 1, deps=("b",)), Stage("b", 1, deps=("a",))])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            _validate_dag([Stage("a", 1, deps=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _validate_dag([Stage("a", 1), Stage("a", 2)])

    def test_invalid_stage_params(self):
        with pytest.raises(ValueError):
            Stage("s", 0)
        with pytest.raises(ValueError):
            Stage("s", 1, input_mb=-1)
        with pytest.raises(ValueError):
            Stage("s", 1, max_parallelism=0)


class TestExecution:
    def test_cpu_only_job_completes_on_schedule(self, engine, api):
        # 200 cpu-seconds over 2 executors × 2 cores = 50s of work.
        job = submit(engine, api, stages=[Stage("map", 200.0)])
        engine.run_until(500.0)
        assert job.done
        assert job.makespan() == pytest.approx(6 + 50, abs=5)

    def test_progress_monotone(self, engine, api):
        job = submit(engine, api, stages=[Stage("map", 400.0)])
        values = []
        for t in range(10, 200, 20):
            engine.run_until(float(t))
            values.append(job.progress())
        assert values == sorted(values)
        assert 0.0 <= values[0] and values[-1] <= 1.0

    def test_stages_execute_in_dependency_order(self, engine, api):
        # Each stage: 200 cpu-seconds / (2 executors × 2 cores) = 50 s.
        stages = [Stage("map", 200.0), Stage("reduce", 200.0, deps=("map",))]
        job = submit(engine, api, stages=stages)
        engine.run_until(30.0)
        assert job.current_stage().name == "map"
        engine.run_until(80.0)
        assert job.current_stage().name == "reduce"
        engine.run_until(300.0)
        assert job.done

    def test_io_bound_stage_slower(self, engine, api):
        # 100 cpu-seconds but 10 GB input over 100 MB/s/executor ⇒ io-bound.
        fast = submit(engine, api, stages=[Stage("s", 100.0)])
        engine.run_until(1000.0)
        fast_makespan = fast.makespan()

        engine2 = type(engine)()
        from tests.conftest import make_cluster
        from repro.cluster.api import ClusterAPI
        cluster2 = make_cluster(engine2)
        api2 = ClusterAPI(cluster2)
        slow = submit(engine2, api2, stages=[Stage("s", 100.0, input_mb=10_000)])
        engine2.run_until(5000.0)
        assert slow.done
        assert slow.makespan() > fast_makespan * 1.5

    def test_more_executors_finish_faster(self, engine, api):
        job = submit(engine, api, stages=[Stage("map", 400.0)], executors=4)
        engine.run_until(500.0)
        assert job.done
        assert job.makespan() == pytest.approx(6 + 50, abs=5)

    def test_max_parallelism_caps_speedup(self, engine, api):
        job = submit(
            engine, api,
            stages=[Stage("map", 200.0, max_parallelism=1)], executors=4,
        )
        engine.run_until(500.0)
        assert job.done
        # Only one executor works: 200 / 2 cores = 100s.
        assert job.makespan() == pytest.approx(6 + 100, abs=10)

    def test_pods_finished_on_completion(self, engine, api):
        job = submit(engine, api, stages=[Stage("map", 20.0)])
        engine.run_until(100.0)
        assert job.done
        pods = api.list_pods(app="job")
        assert pods and all(p.phase == PodPhase.SUCCEEDED for p in pods)

    def test_metrics_exported(self, engine, api):
        job = submit(engine, api, stages=[Stage("map", 100.0)])
        engine.run_until(20.0)
        metrics = job.sample_metrics(engine.now)
        assert 0 < metrics["progress"] < 1
        assert metrics["throughput"] > 0
        assert metrics["stages_done"] == 0.0


class TestLocality:
    def _stores(self):
        store = ObjectStore(remote_penalty=0.5)
        spread_blocks(
            store, "data", total_mb=2000, block_mb=100,
            nodes=["node-0"], replication=1,
        )
        return store

    def test_local_reads_use_disk(self, engine, api):
        store = self._stores()
        job = submit(
            engine, api,
            stages=[Stage("scan", 500.0, input_mb=20_000)],
            store=store, dataset="data", node="node-0",
        )
        engine.run_until(30.0)
        pod = job.running_pods()[0]
        assert pod.usage.disk_bw > 0
        assert pod.usage.net_bw == pytest.approx(0.0, abs=1e-6)

    def test_remote_reads_use_network_and_run_slower(self, engine, api):
        store = self._stores()
        job = submit(
            engine, api,
            stages=[Stage("scan", 500.0, input_mb=20_000)],
            store=store, dataset="data", node="node-1",  # data is on node-0
        )
        engine.run_until(30.0)
        pod = job.running_pods()[0]
        assert pod.usage.net_bw > 0
        assert pod.usage.disk_bw == pytest.approx(0.0, abs=1e-6)

    def test_dataset_requires_store(self, engine, api):
        with pytest.raises(ValueError):
            BigDataJob(
                "j", engine, api, stages=[Stage("s", 1.0)],
                initial_allocation=ALLOC, dataset="data",
            )

    def test_dataset_label_set(self, engine, api):
        store = self._stores()
        job = BigDataJob(
            "j", engine, api, stages=[Stage("s", 1.0)],
            initial_allocation=ALLOC, store=store, dataset="data",
        )
        job.start()
        assert api.get_pod("j-0").spec.labels["dataset"] == "data"
