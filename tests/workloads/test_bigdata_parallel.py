"""Tests for concurrent execution of independent DAG branches."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.workloads.bigdata import BigDataJob, Stage


ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100)


def submit(engine, api, *, stages, executors):
    job = BigDataJob(
        "job", engine, api,
        stages=stages, initial_allocation=ALLOC, initial_executors=executors,
    )
    job.start()
    nodes = [n.name for n in api.list_nodes()]
    for i, pod in enumerate(api.pending_pods()):
        api.bind_pod(pod.name, nodes[i % len(nodes)])
    engine.run_until(engine.now + 6.0)
    return job


def branchy(work=200.0):
    """Diamond DAG: two independent branches between source and sink."""
    return [
        Stage("src", 1.0),
        Stage("left", work, deps=("src",)),
        Stage("right", work, deps=("src",)),
        Stage("sink", 1.0, deps=("left", "right")),
    ]


def test_independent_branches_run_concurrently(engine, api):
    job = submit(engine, api, stages=branchy(), executors=2)
    engine.run_until(30.0)
    runnable = {s.name for s in job.runnable_stages()}
    assert runnable == {"left", "right"}
    left = next(s for s in job.stages if s.name == "left")
    right = next(s for s in job.stages if s.name == "right")
    assert left.remaining_work < left.work_cpu_seconds
    assert right.remaining_work < right.work_cpu_seconds


def test_parallel_branches_halve_makespan(engine, api):
    """With 2 executors, a diamond of two 200-cpu-s branches takes ~50 s
    (each branch gets one 2-core executor) instead of ~100 s serialized."""
    job = submit(engine, api, stages=branchy(200.0), executors=2)
    engine.run_until(600.0)
    assert job.done
    assert job.makespan() == pytest.approx(6 + 100 + 2, abs=15)
    # Sanity: the serial equivalent (chained stages) takes about twice that.
    from repro.cluster.api import ClusterAPI
    from repro.sim.engine import Engine
    from tests.conftest import make_cluster
    engine2 = Engine()
    api2 = ClusterAPI(make_cluster(engine2))
    serial = submit(
        engine2, api2,
        stages=[
            Stage("src", 1.0),
            Stage("left", 200.0, deps=("src",)),
            Stage("right", 200.0, deps=("left",)),
            Stage("sink", 1.0, deps=("right",)),
        ],
        executors=2,
    )
    engine2.run_until(600.0)
    assert serial.done
    # Serial: each 200-cpu-s stage uses both executors: 200/4 = 50 s per
    # stage ⇒ similar total here; the *structural* win appears when
    # max_parallelism caps per-stage executors:
    assert serial.makespan() == pytest.approx(6 + 100 + 2, abs=15)


def test_parallelism_cap_with_branches(engine, api):
    """Each branch capped at 1 executor: 4 executors split across the two
    branches still finish in one branch-time, not two."""
    stages = [
        Stage("src", 1.0),
        Stage("left", 200.0, deps=("src",), max_parallelism=1),
        Stage("right", 200.0, deps=("src",), max_parallelism=1),
        Stage("sink", 1.0, deps=("left", "right")),
    ]
    job = submit(engine, api, stages=stages, executors=2)
    engine.run_until(600.0)
    assert job.done
    # One 2-core executor per branch: 200/2 = 100 s, branches concurrent.
    assert job.makespan() == pytest.approx(6 + 100 + 2, abs=15)


def test_executor_assignment_balances(engine, api):
    job = submit(engine, api, stages=branchy(), executors=4)
    engine.run_until(10.0)
    assignment = job._assign_executors(job.runnable_stages(), job.running_pods())
    per_stage = {}
    for stage in assignment.values():
        per_stage[stage.name] = per_stage.get(stage.name, 0) + 1
    assert per_stage == {"left": 2, "right": 2}


def test_leftover_executors_idle(engine, api):
    stages = [Stage("only", 1000.0, max_parallelism=1)]
    job = submit(engine, api, stages=stages, executors=3)
    engine.run_until(20.0)
    busy = [p for p in job.running_pods() if p.usage.cpu > 0.5]
    assert len(busy) == 1
