"""Unit tests for the microservice queueing model."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import DemandPhase, Microservice, ServiceDemands
from repro.workloads.traces import ConstantTrace, StepTrace


DEMANDS = ServiceDemands(
    cpu_seconds=0.01,  # 100 rps per core
    disk_mb=0.1,
    net_mb=0.05,
    mem_base=0.25,
    mem_per_inflight=0.001,
    base_latency=0.01,
)

AMPLE = ResourceVector(cpu=4, memory=4, disk_bw=200, net_bw=200)


def deploy(engine, api, *, trace, demands=DEMANDS, allocation=AMPLE, replicas=1, **kw):
    svc = Microservice(
        "svc",
        engine,
        api,
        trace=trace,
        demands=demands,
        initial_allocation=allocation,
        initial_replicas=replicas,
        **kw,
    )
    svc.start()
    for pod in api.pending_pods():
        api.bind_pod(pod.name, "node-0")
    engine.run_until(6.0)  # past startup delay
    return svc


class TestDemands:
    def test_capacity_cpu_bound(self):
        rate, bottleneck = DEMANDS.capacity(
            ResourceVector(cpu=1, memory=1, disk_bw=1e6, net_bw=1e6)
        )
        assert rate == pytest.approx(100.0)
        assert bottleneck == "cpu"

    def test_capacity_disk_bound(self):
        rate, bottleneck = DEMANDS.capacity(
            ResourceVector(cpu=100, memory=1, disk_bw=1, net_bw=1e6)
        )
        assert rate == pytest.approx(10.0)
        assert bottleneck == "disk_bw"

    def test_capacity_net_bound(self):
        rate, bottleneck = DEMANDS.capacity(
            ResourceVector(cpu=100, memory=1, disk_bw=1e6, net_bw=1)
        )
        assert rate == pytest.approx(20.0)
        assert bottleneck == "net_bw"

    def test_invalid_demands(self):
        with pytest.raises(ValueError):
            ServiceDemands(cpu_seconds=0)
        with pytest.raises(ValueError):
            ServiceDemands(cpu_seconds=0.01, disk_mb=-1)


class TestSteadyState:
    def test_light_load_low_latency(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(50))
        engine.run_until(60.0)
        assert svc.current_latency < 3 * DEMANDS.base_latency
        assert svc.current_throughput == pytest.approx(50, rel=0.05)
        assert svc.current_backlog < 1.0

    def test_overload_raises_latency_and_backlog(self, engine, api):
        tight = ResourceVector(cpu=0.5, memory=1, disk_bw=100, net_bw=100)  # 50 rps cap
        svc = deploy(engine, api, trace=ConstantTrace(100), allocation=tight)
        engine.run_until(60.0)
        assert svc.current_latency > 10 * DEMANDS.base_latency
        assert svc.current_backlog > 0
        # Served rate is pinned at capacity.
        assert svc.current_throughput == pytest.approx(50, rel=0.1)

    def test_usage_tracks_served_demand(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(100))
        engine.run_until(60.0)
        pod = svc.running_pods()[0]
        assert pod.usage.cpu == pytest.approx(1.0, rel=0.1)      # 100 rps × 0.01
        assert pod.usage.disk_bw == pytest.approx(10.0, rel=0.1)  # 100 × 0.1
        assert pod.usage.net_bw == pytest.approx(5.0, rel=0.1)

    def test_usage_never_exceeds_allocation(self, engine, api):
        tight = ResourceVector(cpu=0.5, memory=0.5, disk_bw=5, net_bw=5)
        svc = deploy(engine, api, trace=ConstantTrace(500), allocation=tight)
        engine.run_until(30.0)
        pod = svc.running_pods()[0]
        assert pod.usage.fits_within(pod.allocation)


class TestBottlenecks:
    def test_io_bound_service_reports_disk(self, engine, api):
        # 50 rps via disk
        alloc = ResourceVector(cpu=4, memory=4, disk_bw=5, net_bw=200)
        svc = deploy(engine, api, trace=ConstantTrace(100), allocation=alloc)
        engine.run_until(30.0)
        assert svc.current_bottleneck == "disk_bw"

    def test_memory_pressure_inflates_latency(self, engine, api):
        demands = ServiceDemands(
            cpu_seconds=0.001, mem_base=2.0, mem_per_inflight=0.01, base_latency=0.01
        )
        starved = ResourceVector(cpu=4, memory=1, disk_bw=100, net_bw=100)
        svc = deploy(engine, api, trace=ConstantTrace(100), demands=demands,
                     allocation=starved)
        engine.run_until(30.0)
        assert svc.current_bottleneck == "memory"
        assert svc.current_latency > 0.015


class TestReplicasAndPhases:
    def test_load_splits_across_replicas(self, engine, api):
        tight = ResourceVector(cpu=0.6, memory=1, disk_bw=100, net_bw=100)
        svc = deploy(
            engine, api, trace=ConstantTrace(100), allocation=tight, replicas=2
        )
        engine.run_until(60.0)
        # 50 rps per replica under a 60 rps cap: fine.
        assert svc.current_throughput == pytest.approx(100, rel=0.1)
        assert svc.current_latency < 0.1

    def test_no_replicas_reports_timeout(self, engine, api):
        svc = Microservice(
            "svc", engine, api,
            trace=ConstantTrace(100), demands=DEMANDS,
            initial_allocation=AMPLE, initial_replicas=0,
        )
        svc.start()
        engine.run_until(10.0)
        assert svc.current_latency == svc.max_latency
        assert svc.current_throughput == 0.0

    def test_demand_phase_shift(self, engine, api):
        phases = [
            DemandPhase(0.0, ServiceDemands(cpu_seconds=0.01, base_latency=0.01)),
            DemandPhase(100.0, ServiceDemands(cpu_seconds=0.04, base_latency=0.01)),
        ]
        svc = deploy(engine, api, trace=ConstantTrace(50), demands=phases)
        assert svc.demands_at(50.0).cpu_seconds == 0.01
        assert svc.demands_at(100.0).cpu_seconds == 0.04

    def test_empty_phases_rejected(self, engine, api):
        with pytest.raises(ValueError):
            Microservice(
                "svc", engine, api,
                trace=ConstantTrace(1), demands=[],
                initial_allocation=AMPLE,
            )

    def test_latency_recovers_after_load_drop(self, engine, api):
        tight = ResourceVector(cpu=0.5, memory=1, disk_bw=100, net_bw=100)
        trace = StepTrace([(0, 100), (60, 10)])
        svc = deploy(engine, api, trace=trace, allocation=tight)
        engine.run_until(59.0)
        overloaded = svc.current_latency
        engine.run_until(300.0)
        assert svc.current_latency < overloaded / 2

    def test_served_total_accumulates(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(50))
        engine.run_until(66.0)
        # ~60 seconds of running at 50 rps (startup delay excluded).
        assert svc.total_served == pytest.approx(50 * 60, rel=0.1)

    def test_metrics_exported(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(50))
        engine.run_until(30.0)
        metrics = svc.sample_metrics(engine.now)
        for key in ("latency", "throughput", "offered", "backlog", "served_total"):
            assert key in metrics

    def test_tail_factor_scales_latency(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(50), tail_factor=3.0)
        engine.run_until(30.0)
        base = DEMANDS.base_latency
        assert svc.current_latency >= 3 * base * 0.9

    def test_invalid_tail_factor(self, engine, api):
        with pytest.raises(ValueError):
            Microservice(
                "svc", engine, api, trace=ConstantTrace(1), demands=DEMANDS,
                initial_allocation=AMPLE, tail_factor=0.5,
            )


class TestArrivalDriven:
    """Open-loop arrival processes wired into the tick path."""

    def _arrivals(self, seed=0, rate=50.0):
        import numpy as np

        from repro.workloads.arrivals import PoissonArrivals

        return PoissonArrivals(
            ConstantTrace(rate), np.random.default_rng(seed)
        )

    def test_offered_tracks_the_event_stream(self, engine, api):
        svc = deploy(
            engine, api, trace=ConstantTrace(50.0),
            arrivals=self._arrivals(rate=50.0),
        )
        engine.run_until(300.0)
        # Offered load is events-per-tick, so it hovers at the rate.
        assert svc.current_offered == pytest.approx(50.0, rel=0.5)
        assert svc.total_served > 0

    def test_unmarked_process_keeps_series_set(self, engine, api):
        svc = deploy(
            engine, api, trace=ConstantTrace(20.0),
            arrivals=self._arrivals(rate=20.0),
        )
        engine.run_until(60.0)
        metrics = svc.sample_metrics(engine.now)
        assert "size_factor" not in metrics
        assert svc.current_size_factor == 1.0

    def test_marked_process_exports_size_factor(self, engine, api):
        import numpy as np

        from repro.workloads.arrivals import MarkedArrivals, ParetoSizes

        marked = MarkedArrivals(
            self._arrivals(rate=30.0),
            ParetoSizes(alpha=1.6),
            np.random.default_rng(1),
        )
        svc = deploy(
            engine, api, trace=ConstantTrace(30.0), arrivals=marked,
        )
        engine.run_until(120.0)
        metrics = svc.sample_metrics(engine.now)
        assert "size_factor" in metrics
        assert metrics["size_factor"] > 0.0

    def test_rate_fallback_without_arrivals(self, engine, api):
        svc = deploy(engine, api, trace=ConstantTrace(25.0))
        engine.run_until(60.0)
        assert svc.current_offered == pytest.approx(25.0)
