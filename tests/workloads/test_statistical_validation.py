"""Statistical validation of the arrival library.

Every stochastic claim the generators make is tested against its
theoretical target: delivered event mass vs the rate curve's integral,
exponential-gap CV for Poisson, over-dispersion for MMPP, tail-index
recovery for Pareto marks, spectral period/phase recovery for diurnal
load, cross-seed independence, and byte-identical same-seed replay for
every generator. All statistical assertions run on **fixed seeds** with
tolerances sized for the sample mass, so they are deterministic —
re-running the suite cannot flake (see docs/testing.md). The
hypothesis-driven properties only assert deterministic facts (exact
counts, exact replays), never distributional ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.arrivals import (
    LognormalSizes,
    MarkedArrivals,
    MMPPArrivals,
    ParetoSizes,
    PoissonArrivals,
    trace_integral,
)
from repro.workloads.traceio import TraceReplayer
from repro.workloads.traces import (
    ConstantTrace,
    DiurnalTrace,
    ReplayTrace,
    StepTrace,
)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _hill_alpha(samples: np.ndarray, top_frac: float = 0.1) -> float:
    order = np.sort(samples)[::-1]
    k = max(10, int(len(order) * top_frac))
    tail = order[: k + 1]
    return float(1.0 / np.mean(np.log(tail[:-1] / tail[-1])))


class TestMeanRate:
    """Delivered events ≈ ∫rate dt for every generator."""

    @pytest.mark.parametrize(
        "trace",
        [
            ConstantTrace(30.0),
            DiurnalTrace(base=40.0, amplitude=25.0, period=1200.0),
            StepTrace([(900.0, 60.0), (1800.0, 15.0)], initial=30.0),
        ],
        ids=["constant", "diurnal", "step"],
    )
    def test_poisson_delivers_the_integral(self, trace):
        horizon = 3600.0
        events = PoissonArrivals(trace, _rng(21)).window(0.0, horizon)
        expected = trace_integral(trace, 0.0, horizon)
        # ±4σ Poisson band around the integral.
        assert abs(len(events) - expected) < 4.0 * np.sqrt(expected)

    def test_deterministic_replayer_is_exact(self):
        trace = DiurnalTrace(base=40.0, amplitude=25.0, period=1200.0)
        events = TraceReplayer(trace, step=0.5).events(0.0, 3600.0)
        expected = trace_integral(trace, 0.0, 3600.0, step=0.5)
        assert abs(len(events) - expected) <= 1.5

    def test_mmpp_delivers_the_modulated_integral(self):
        trace = ConstantTrace(30.0)
        proc = MMPPArrivals(trace, _rng(22), horizon=3600.0)
        events = proc.window(0.0, 3600.0)
        expected = trace_integral(proc, 0.0, 3600.0)
        assert abs(len(events) - expected) < 4.0 * np.sqrt(expected)


class TestDispersion:
    """Inter-arrival gap structure: Poisson is CV=1, MMPP exceeds it."""

    def test_poisson_cv_is_one(self):
        events = PoissonArrivals(ConstantTrace(50.0), _rng(23)).window(
            0.0, 3600.0
        )
        gaps = np.diff(events)
        cv = np.std(gaps) / np.mean(gaps)
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_mmpp_over_disperses_the_same_mean_load(self):
        flat = ConstantTrace(50.0)
        proc = MMPPArrivals(flat, _rng(24), horizon=3600.0)
        gaps = np.diff(proc.window(0.0, 3600.0))
        cv = np.std(gaps) / np.mean(gaps)
        assert cv > 1.15

    def test_mmpp_bursts_follow_the_state_path(self):
        flat = ConstantTrace(50.0)
        proc = MMPPArrivals(
            flat, _rng(25), factors=(0.25, 4.0), mean_dwell=120.0,
            horizon=3600.0,
        )
        events = proc.window(0.0, 3600.0)
        # Per-100s bins: counts in high-factor bins dominate low ones.
        bins = np.arange(0.0, 3700.0, 100.0)
        counts, _ = np.histogram(events, bins)
        factor = np.array([proc.factor_at(t + 50.0) for t in bins[:-1]])
        high = counts[factor > 1.0].mean()
        low = counts[factor < 1.0].mean()
        assert high > 4.0 * low


class TestTailRecovery:
    """Size marks have the tails they were built with."""

    def test_hill_recovers_pareto_alpha(self):
        for alpha in (1.4, 1.8, 2.5):
            draws = ParetoSizes(alpha=alpha).sample(_rng(26), 20_000)
            assert _hill_alpha(draws) == pytest.approx(alpha, rel=0.12)

    def test_lognormal_tail_is_lighter_than_pareto(self):
        heavy = ParetoSizes(alpha=1.5).sample(_rng(27), 20_000)
        light = LognormalSizes(
            mean=ParetoSizes(alpha=1.5).mean(), cv=1.0
        ).sample(_rng(27), 20_000)
        # Identical means, wildly different extremes.
        assert np.mean(heavy) == pytest.approx(np.mean(light), rel=0.15)
        assert np.max(heavy) > 5.0 * np.max(light)

    def test_marked_arrivals_preserve_the_mark_distribution(self):
        marked = MarkedArrivals(
            PoissonArrivals(ConstantTrace(40.0), _rng(28)),
            ParetoSizes(alpha=1.6),
            _rng(29),
        )
        _times, sizes = marked.window_marked(0.0, 2000.0)
        assert np.mean(sizes) == pytest.approx(marked.mean_size(), rel=0.2)


class TestSpectralRecovery:
    """FFT over binned counts recovers the diurnal period and phase."""

    def test_period_detection(self):
        period = 900.0
        horizon = 7200.0
        trace = DiurnalTrace(base=60.0, amplitude=40.0, period=period)
        events = PoissonArrivals(trace, _rng(30)).window(0.0, horizon)
        dt = 10.0
        counts, _ = np.histogram(events, np.arange(0.0, horizon + dt, dt))
        spectrum = np.fft.rfft(counts - counts.mean())
        freqs = np.fft.rfftfreq(len(counts), d=dt)
        peak = freqs[np.argmax(np.abs(spectrum))]
        assert 1.0 / peak == pytest.approx(period, rel=0.05)

    def test_phase_detection(self):
        period = 900.0
        phase = 300.0
        horizon = 7200.0
        trace = DiurnalTrace(
            base=60.0, amplitude=40.0, period=period, phase=phase
        )
        events = PoissonArrivals(trace, _rng(31)).window(0.0, horizon)
        dt = 10.0
        centers = np.arange(0.0, horizon, dt) + dt / 2.0
        counts, _ = np.histogram(events, np.arange(0.0, horizon + dt, dt))
        # Project onto the known carrier to read the phase offset. The
        # rate is base + A·sin(2π(t−phase)/P), and projecting a sine on
        # e^{-iθ} lands at angle −φ0 − π/2, so undo the π/2 too.
        angle = 2.0 * np.pi * centers / period
        z = np.sum((counts - counts.mean()) * np.exp(-1j * angle))
        recovered = (
            (-np.angle(z) - np.pi / 2.0) * period / (2.0 * np.pi)
        ) % period
        shift = min(
            abs(recovered - phase % period),
            period - abs(recovered - phase % period),
        )
        assert shift < 0.05 * period


class TestIndependence:
    """Different seeds give statistically independent streams."""

    def test_cross_seed_counts_uncorrelated(self):
        flat = ConstantTrace(40.0)
        bins = np.arange(0.0, 3600.0 + 60.0, 60.0)
        a, _ = np.histogram(
            PoissonArrivals(flat, _rng(32)).window(0.0, 3600.0), bins
        )
        b, _ = np.histogram(
            PoissonArrivals(flat, _rng(33)).window(0.0, 3600.0), bins
        )
        r = np.corrcoef(a, b)[0, 1]
        assert abs(r) < 0.15

    def test_cross_seed_streams_differ(self):
        flat = ConstantTrace(40.0)
        a = PoissonArrivals(flat, _rng(34)).window(0.0, 600.0)
        b = PoissonArrivals(flat, _rng(35)).window(0.0, 600.0)
        assert len(a) != len(b) or not np.allclose(a, b)


class TestSameSeedDeterminism:
    """Every generator is a pure function of (spec, seed): two runs are
    byte-identical, including across windowed vs one-shot access."""

    def test_poisson(self):
        trace = DiurnalTrace(base=40.0, amplitude=25.0, period=600.0)
        a = PoissonArrivals(trace, _rng(36)).window(0.0, 1200.0)
        b = PoissonArrivals(trace, _rng(36)).window(0.0, 1200.0)
        assert a.tobytes() == b.tobytes()

    def test_mmpp(self):
        trace = ConstantTrace(30.0)
        a = MMPPArrivals(trace, _rng(37), horizon=1200.0).window(0.0, 1200.0)
        b = MMPPArrivals(trace, _rng(37), horizon=1200.0).window(0.0, 1200.0)
        assert a.tobytes() == b.tobytes()

    def test_marked(self):
        def build():
            return MarkedArrivals(
                PoissonArrivals(ConstantTrace(30.0), _rng(38)),
                ParetoSizes(alpha=1.6),
                _rng(39),
            )

        t1, s1 = build().window_marked(0.0, 600.0)
        t2, s2 = build().window_marked(0.0, 600.0)
        assert t1.tobytes() == t2.tobytes()
        assert s1.tobytes() == s2.tobytes()

    def test_replayer_deterministic_mode(self):
        trace = StepTrace([(100.0, 20.0)], initial=5.0)
        a = TraceReplayer(trace).events(0.0, 400.0)
        b = TraceReplayer(trace).events(0.0, 400.0)
        assert a.tobytes() == b.tobytes()

    def test_replayer_poisson_mode(self):
        trace = StepTrace([(100.0, 20.0)], initial=5.0)
        a = TraceReplayer(trace, mode="poisson", rng=_rng(40)).window(
            0.0, 400.0
        )
        b = TraceReplayer(trace, mode="poisson", rng=_rng(40)).window(
            0.0, 400.0
        )
        assert a.tobytes() == b.tobytes()


# -- hypothesis properties (deterministic facts only) ---------------------------

rates = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(
    initial=rates,
    steps=st.lists(rates, min_size=1, max_size=5),
    seed=seeds,
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_poisson_same_seed_property(initial, steps, seed):
    trace = StepTrace(
        [(100.0 * (i + 1), r) for i, r in enumerate(steps)], initial=initial
    )
    a = PoissonArrivals(trace, _rng(seed)).window(0.0, 700.0)
    b = PoissonArrivals(trace, _rng(seed)).window(0.0, 700.0)
    assert a.tobytes() == b.tobytes()
    assert np.all(a >= 0.0) and np.all(a < 700.0)


@given(
    initial=rates,
    steps=st.lists(rates, min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_replayer_count_tracks_integral_property(initial, steps):
    samples = [(0.0, initial)] + [
        (100.0 * (i + 1), r) for i, r in enumerate(steps)
    ]
    trace = ReplayTrace(samples)
    events = TraceReplayer(trace).events(0.0, 700.0)
    expected = trace_integral(trace, 0.0, 700.0)
    assert abs(len(events) - expected) <= 1.5


@given(
    initial=rates,
    steps=st.lists(rates, min_size=1, max_size=4),
    split=st.floats(min_value=1.0, max_value=699.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_replayer_windows_stitch_property(initial, steps, split):
    samples = [(0.0, initial)] + [
        (100.0 * (i + 1), r) for i, r in enumerate(steps)
    ]
    trace = ReplayTrace(samples)
    one_shot = TraceReplayer(trace).events(0.0, 700.0)
    windowed = TraceReplayer(trace)
    stitched = np.concatenate(
        [windowed.window(0.0, split), windowed.window(split, 700.0)]
    )
    np.testing.assert_allclose(stitched, one_shot, atol=1e-9)
