"""Unit tests for the metrics collector / scrape loop."""

import pytest

from repro.metrics.collector import MetricsCollector
from tests.conftest import make_spec


class FakeSource:
    def __init__(self, prefix="app/fake"):
        self.prefix = prefix
        self.value = 1.0
        self.samples = 0

    def metric_prefix(self):
        return self.prefix

    def sample_metrics(self, now):
        self.samples += 1
        return {"latency": self.value, "throughput": 2 * self.value}


def test_scrape_records_source_metrics(engine, collector):
    source = FakeSource()
    collector.register(source)
    collector.start()
    engine.run_until(11.0)
    assert collector.scrapes == 2
    assert source.samples == 2
    assert collector.latest("app/fake/latency") == 1.0
    assert collector.latest("app/fake/throughput") == 2.0


def test_scrape_records_cluster_gauges(engine, api, collector):
    api.create_pod(make_spec("p0", cpu=12))
    api.bind_pod("p0", "node-0")
    collector.start()
    engine.run_until(6.0)
    assert collector.latest("cluster/alloc_frac/cpu") == pytest.approx(12 / 48)
    assert collector.latest("cluster/pending_pods") == 0.0


def test_pending_pods_gauge(engine, api, collector):
    api.create_pod(make_spec("p0"))
    collector.start()
    engine.run_until(6.0)
    assert collector.latest("cluster/pending_pods") == 1.0


def test_unregister_stops_sampling(engine, collector):
    source = FakeSource()
    collector.register(source)
    collector.start()
    engine.run_until(6.0)
    collector.unregister(source)
    engine.run_until(20.0)
    assert source.samples == 1


def test_unregister_missing_is_safe(collector):
    collector.unregister(FakeSource())


def test_record_out_of_band(engine, collector):
    engine.run_until(3.0)
    collector.record("custom/metric", 42.0)
    assert collector.latest("custom/metric") == 42.0


def test_window_queries(engine, collector):
    source = FakeSource()
    collector.register(source)
    collector.start()
    engine.run_until(5.0)
    source.value = 3.0
    engine.run_until(10.0)
    assert collector.window_mean("app/fake/latency", 10.0) == pytest.approx(2.0)
    assert collector.window_percentile("app/fake/latency", 10.0, 100) == 3.0


def test_missing_series_queries_return_none(collector):
    assert collector.latest("nope") is None
    assert collector.window_mean("nope", 10) is None
    assert collector.window_percentile("nope", 10, 99) is None


def test_series_names_and_has_series(engine, collector):
    collector.record("a/b", 1.0)
    assert collector.has_series("a/b")
    assert not collector.has_series("a/c")
    assert "a/b" in collector.series_names()


def test_double_start_rejected(collector):
    collector.start()
    with pytest.raises(RuntimeError):
        collector.start()


def test_stop_halts_scraping(engine, collector):
    collector.start()
    engine.run_until(6.0)
    collector.stop()
    engine.run_until(60.0)
    assert collector.scrapes == 1


def test_invalid_interval(engine, api):
    with pytest.raises(ValueError):
        MetricsCollector(engine, api, scrape_interval=0)


def test_last_scrape_age_tracks_per_series_staleness(engine, collector):
    source = FakeSource()
    collector.register(source)
    collector.start()
    engine.run_until(10.0)
    assert collector.last_scrape_age("app/fake/latency") == pytest.approx(0.0)
    collector.unregister(source)
    engine.run_until(22.0)
    # The series went stale while the scrape loop kept running.
    assert collector.last_scrape_age("app/fake/latency") == pytest.approx(12.0)
    assert collector.last_scrape_age("never/scraped") is None


def test_scrape_gap_counted_when_rounds_are_missed(engine, collector):
    collector.start()
    engine.run_until(10.0)
    assert collector.scrape_gaps == 0
    collector.stop()
    engine.run_until(40.0)
    collector.start()
    engine.run_until(46.0)
    # Rounds at 15..40 never ran: the late arrival at 45 books the
    # missed rounds as a gap.
    assert collector.scrape_gaps >= 5


def test_internal_source_bypasses_fault_filter(engine, api):
    from repro.metrics.faults import MetricsFaultInjector

    faults = MetricsFaultInjector()
    faults.drop_scrape_probability = 1.0
    collector = MetricsCollector(engine, api, scrape_interval=5.0,
                                 faults=faults)
    internal = FakeSource(prefix="ctrl")
    collector.register_internal(internal)
    collector.start()
    engine.run_until(20.0)
    # Every round was dropped by the fault, so nothing internal sampled
    # either — but the drops were booked as gaps.
    assert collector.scrape_gaps >= 3
    faults.drop_scrape_probability = 0.0
    engine.run_until(30.0)
    assert collector.latest("ctrl/latency") == 1.0


def test_scrape_span_at_without_telemetry_is_none(engine, collector):
    collector.start()
    engine.run_until(20.0)
    assert collector.scrape_span_at(20.0) is None


def test_scrape_span_at_returns_covering_round(engine, api):
    from repro.obs.telemetry import Telemetry

    collector = MetricsCollector(engine, api, scrape_interval=5.0)
    tel = Telemetry(engine)
    collector.telemetry = tel
    collector.start()
    engine.run_until(21.0)
    span_at_7 = collector.scrape_span_at(7.0)   # round at t=5
    span_at_20 = collector.scrape_span_at(20.0)  # round at t=20
    assert span_at_7 is not None and span_at_20 is not None
    assert span_at_7 != span_at_20
    assert tel.trace.get(span_at_20).start == 20.0
    assert collector.scrape_span_at(1.0) is None  # before the first round
