"""Unit tests for metrics-pipeline fault injection."""

import numpy as np
import pytest

from repro.cluster.chaos import FaultLog
from repro.metrics.collector import MetricsCollector
from repro.metrics.faults import MetricsFaultInjector


def make(seed=0, log=None):
    return MetricsFaultInjector(np.random.default_rng(seed), log=log)


class TestFilter:
    def test_passthrough_by_default(self):
        faults = make()
        assert faults.filter("app/web/latency", 1.5, 10.0, 1.0) == 1.5
        assert not faults.should_drop_scrape(10.0)

    def test_blackout_drops_matching_prefix_only(self):
        faults = make()
        faults.blackout("app/web", now=0.0, duration=50.0)
        assert faults.filter("app/web/latency", 1.5, 10.0, 1.0) is None
        assert faults.filter("app/cache/latency", 1.5, 10.0, 1.0) == 1.5
        # Window over: samples flow again.
        assert faults.filter("app/web/latency", 1.5, 60.0, 1.0) == 1.5
        assert faults.samples_dropped == 1

    def test_freeze_holds_last_value(self):
        faults = make()
        faults.freeze("app/web", now=0.0, duration=50.0)
        assert faults.filter("app/web/latency", 9.9, 10.0, 1.25) == 1.25
        assert faults.filter("app/web/latency", 9.9, 60.0, 1.25) == 9.9
        assert faults.samples_frozen == 1

    def test_freeze_without_history_drops(self):
        faults = make()
        faults.freeze("app/web", now=0.0, duration=50.0)
        assert faults.filter("app/web/latency", 9.9, 10.0, None) is None

    def test_noise_window_multiplies(self):
        faults = make()
        faults.inject_noise(0.0, 50.0, probability=1.0, factor=10.0)
        assert faults.filter("app/web/latency", 2.0, 10.0, None) == 20.0
        assert faults.filter("app/web/latency", 2.0, 60.0, None) == 2.0
        assert faults.outliers_injected == 1

    def test_drop_scrapes_window(self):
        faults = make()
        faults.drop_scrapes(0.0, 30.0)
        assert faults.should_drop_scrape(10.0)
        assert not faults.should_drop_scrape(40.0)
        assert faults.scrapes_dropped == 1

    def test_probabilistic_drop_deterministic_given_seed(self):
        def run(seed):
            faults = make(seed)
            faults.drop_scrape_probability = 0.5
            return [faults.should_drop_scrape(float(t)) for t in range(50)]

        first, second = run(3), run(3)
        assert first == second
        assert any(first) and not all(first)
        assert run(3) != run(4)

    def test_invalid_params(self):
        faults = make()
        with pytest.raises(ValueError):
            faults.drop_scrapes(0.0, 0.0)
        with pytest.raises(ValueError):
            faults.drop_scrapes(0.0, 10.0, probability=0.0)
        with pytest.raises(ValueError):
            faults.blackout("app/web", 0.0, -1.0)
        with pytest.raises(ValueError):
            faults.freeze("app/web", 0.0, 0.0)
        with pytest.raises(ValueError):
            faults.inject_noise(0.0, 10.0, probability=1.5)

    def test_window_faults_logged_with_ends(self):
        log = FaultLog()
        faults = make(log=log)
        faults.drop_scrapes(10.0, 20.0)
        faults.blackout("app/web", 40.0, 5.0)
        faults.freeze("app/cache", 50.0, 5.0)
        faults.inject_noise(60.0, 5.0)
        kinds = [e.kind for e in log.episodes]
        assert kinds == [
            "scrape-drop", "scrape-blackout", "metrics-freeze", "metrics-noise",
        ]
        assert all(not e.active for e in log.episodes)
        assert log.episodes[0].duration() == pytest.approx(20.0)


class TestCollectorIntegration:
    def make_collector(self, engine, api, faults):
        return MetricsCollector(
            engine, api, scrape_interval=5.0, faults=faults
        )

    def test_dropped_scrapes_age_timestamps(self, engine, api):
        faults = make()
        collector = self.make_collector(engine, api, faults)
        collector.start()
        engine.run_until(20.0)
        faults.drop_scrapes(engine.now, 30.0)
        engine.run_until(45.0)
        # No sample landed during the window; the last one predates it.
        assert collector.latest_time("cluster/pending_pods") <= 20.0
        engine.run_until(60.0)
        assert collector.latest_time("cluster/pending_pods") >= 55.0

    def test_blackout_stalls_one_prefix_only(self, engine, api):
        faults = make()
        collector = self.make_collector(engine, api, faults)
        collector.start()
        engine.run_until(20.0)
        faults.blackout("node/node-0", engine.now, 30.0)
        engine.run_until(45.0)
        assert collector.latest_time("node/node-0/usage_frac/cpu") <= 20.0
        assert collector.latest_time("node/node-1/usage_frac/cpu") >= 40.0

    def test_frozen_series_keeps_fresh_timestamps(self, engine, api):
        faults = make()
        collector = self.make_collector(engine, api, faults)
        collector.start()
        engine.run_until(20.0)
        frozen_value = collector.latest("cluster/pending_pods")
        faults.freeze("cluster/pending_pods", engine.now, 30.0)
        engine.run_until(45.0)
        # Values are stale but timestamps advance: the hard staleness mode.
        assert collector.latest("cluster/pending_pods") == frozen_value
        assert collector.latest_time("cluster/pending_pods") >= 40.0

    def test_record_bypasses_fault_filter(self, engine, api):
        faults = make()
        faults.blackout("control", 0.0, 1000.0)
        collector = self.make_collector(engine, api, faults)
        collector.record("control/svc/error", 0.5)
        assert collector.latest("control/svc/error") == 0.5
