"""Unit tests for CSV export and fairness index."""

import pytest

from repro.analysis.stats import jains_index


class TestExportCsv:
    def test_export_roundtrip(self, engine, collector, tmp_path):
        for t in (0.0, 60.0, 120.0):
            engine.run_until(t)
            collector.record("a/x", t)
            collector.record("a/y", 2 * t)
        path = tmp_path / "out.csv"
        rows = collector.export_csv(str(path), ["a/x", "a/y"], step=60.0,
                                    start=0.0, end=120.0)
        assert rows == 3
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,a/x,a/y"
        assert lines[1] == "0,0,0"
        assert lines[3] == "120,120,240"

    def test_missing_series_rejected(self, collector, tmp_path):
        with pytest.raises(KeyError):
            collector.export_csv(str(tmp_path / "x.csv"), ["ghost"])

    def test_empty_cells_before_first_sample(self, engine, collector, tmp_path):
        engine.run_until(100.0)
        collector.record("late", 5.0)
        path = tmp_path / "out.csv"
        collector.export_csv(str(path), ["late"], step=50.0, start=0.0,
                             end=100.0)
        lines = path.read_text().strip().splitlines()
        assert lines[1] == "0,"
        assert lines[3] == "100,5"

    def test_invalid_step(self, collector, tmp_path):
        with pytest.raises(ValueError):
            collector.export_csv(str(tmp_path / "x.csv"), [], step=0)


class TestJainsIndex:
    def test_equal_shares(self):
        assert jains_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jains_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_moderate_skew(self):
        value = jains_index([4, 2, 2])
        assert 0.8 < value < 1.0

    def test_all_zero_is_fair(self):
        assert jains_index([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_index([])
        with pytest.raises(ValueError):
            jains_index([-1, 2])
