"""Unit tests for per-node metric gauges."""

import pytest

from repro.cluster.resources import ResourceVector
from tests.conftest import make_spec


def test_per_node_series_created(engine, api, collector):
    collector.start()
    engine.run_until(6.0)
    for node in api.list_nodes():
        assert collector.has_series(f"node/{node.name}/usage_frac/cpu")
        assert collector.has_series(f"node/{node.name}/alloc_frac/cpu")


def test_node_alloc_gauge_tracks_bindings(engine, api, collector):
    api.create_pod(make_spec("p", cpu=8))
    api.bind_pod("p", "node-1")
    collector.start()
    engine.run_until(6.0)
    assert collector.latest("node/node-1/alloc_frac/cpu") == pytest.approx(0.5)
    assert collector.latest("node/node-0/alloc_frac/cpu") == 0.0


def test_node_usage_gauge_tracks_consumption(engine, api, collector):
    pod = api.create_pod(make_spec("p", cpu=8))
    api.bind_pod("p", "node-1")
    engine.run_until(6.0)
    pod.record_usage(ResourceVector(cpu=4))
    collector.scrape()
    assert collector.latest("node/node-1/usage_frac/cpu") == pytest.approx(0.25)


def test_node_gauge_drops_after_release(engine, api, collector):
    api.create_pod(make_spec("p", cpu=8))
    api.bind_pod("p", "node-1")
    collector.start()
    engine.run_until(6.0)
    api.mark_finished("p")
    engine.run_until(11.0)
    assert collector.latest("node/node-1/alloc_frac/cpu") == 0.0
