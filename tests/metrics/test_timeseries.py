"""Unit + property tests for TimeSeries."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.timeseries import TimeSeries


def series_from(pairs):
    ts = TimeSeries()
    for t, v in pairs:
        ts.append(t, v)
    return ts


class TestAppend:
    def test_empty_queries(self):
        ts = TimeSeries()
        assert len(ts) == 0
        assert ts.last() is None
        assert ts.last_time() is None
        assert ts.mean_over(10, 5) is None
        assert ts.value_at(1.0) is None

    def test_out_of_order_rejected(self):
        ts = series_from([(1.0, 1.0)])
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_equal_time_allowed(self):
        ts = series_from([(1.0, 1.0)])
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_maxlen_evicts_fifo(self):
        ts = TimeSeries(maxlen=3)
        for i in range(5):
            ts.append(float(i), float(i))
        times, values = ts.to_lists()
        assert times == [2.0, 3.0, 4.0]


class TestPointQueries:
    def test_last(self):
        ts = series_from([(1, 10), (2, 20)])
        assert ts.last() == 20
        assert ts.last_time() == 2

    def test_value_at_step_interpolation(self):
        ts = series_from([(1, 10), (3, 30)])
        assert ts.value_at(0.5) is None
        assert ts.value_at(1.0) == 10
        assert ts.value_at(2.9) == 10
        assert ts.value_at(3.0) == 30
        assert ts.value_at(100.0) == 30


class TestWindowQueries:
    def test_window_is_half_open(self):
        ts = series_from([(1, 1), (2, 2), (3, 3)])
        assert ts.window(1, 3) == [(2.0, 2.0), (3.0, 3.0)]

    def test_mean_over(self):
        ts = series_from([(1, 10), (2, 20), (3, 30)])
        assert ts.mean_over(now=3, span=2) == pytest.approx(25.0)

    def test_min_max_over(self):
        ts = series_from([(1, 5), (2, 1), (3, 9)])
        assert ts.max_over(3, 10) == 9
        assert ts.min_over(3, 10) == 1

    def test_percentile_over(self):
        ts = series_from([(float(i), float(i)) for i in range(1, 101)])
        assert ts.percentile_over(100, 100, 50) == 50
        assert ts.percentile_over(100, 100, 99) == 99
        assert ts.percentile_over(100, 100, 100) == 100
        assert ts.percentile_over(100, 100, 0) == 1

    def test_percentile_invalid(self):
        ts = series_from([(1, 1)])
        with pytest.raises(ValueError):
            ts.percentile_over(1, 1, 150)

    def test_sum_count_over(self):
        ts = series_from([(1, 1), (2, 2), (3, 3)])
        assert ts.sum_over(3, 2) == 5
        assert ts.count_over(3, 2) == 2

    def test_rate_over_counter(self):
        ts = series_from([(0, 0), (10, 100)])
        assert ts.rate_over(10, 20) == pytest.approx(10.0)

    def test_rate_needs_two_samples(self):
        assert series_from([(0, 0)]).rate_over(10, 20) is None


class TestEwma:
    def test_alpha_one_returns_last(self):
        ts = series_from([(1, 1), (2, 2), (3, 9)])
        assert ts.ewma(1.0) == 9

    def test_ewma_weighting(self):
        ts = series_from([(1, 0), (2, 10)])
        assert ts.ewma(0.5) == pytest.approx(5.0)

    def test_ewma_count_limits_history(self):
        ts = series_from([(1, 100), (2, 0), (3, 0)])
        assert ts.ewma(0.5, count=2) == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            series_from([(1, 1)]).ewma(0.0)


class TestIntegrate:
    def test_constant_series(self):
        ts = series_from([(0, 5)])
        assert ts.integrate(0, 10) == pytest.approx(50.0)

    def test_step_series(self):
        ts = series_from([(0, 1), (5, 3)])
        assert ts.integrate(0, 10) == pytest.approx(1 * 5 + 3 * 5)

    def test_partial_window(self):
        ts = series_from([(0, 2), (10, 4)])
        assert ts.integrate(5, 15) == pytest.approx(2 * 5 + 4 * 5)

    def test_window_before_samples(self):
        ts = series_from([(10, 2)])
        assert ts.integrate(0, 5) == 0.0

    def test_empty_window(self):
        ts = series_from([(0, 1)])
        assert ts.integrate(5, 5) == 0.0


class TestProperties:
    sample_lists = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    ).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))

    @given(sample_lists)
    def test_mean_between_min_and_max(self, pairs):
        ts = series_from(pairs)
        now = pairs[-1][0]
        mean = ts.mean_over(now, now + 1)
        if mean is not None:
            assert ts.min_over(now, now + 1) - 1e-9 <= mean
            assert mean <= ts.max_over(now, now + 1) + 1e-9

    @given(sample_lists, st.floats(min_value=0, max_value=100))
    def test_percentile_monotone_in_q(self, pairs, q):
        ts = series_from(pairs)
        now = pairs[-1][0]
        lo = ts.percentile_over(now, now + 1, q / 2)
        hi = ts.percentile_over(now, now + 1, q)
        if lo is not None and hi is not None:
            assert lo <= hi

    @given(sample_lists)
    def test_integrate_additive_in_time(self, pairs):
        ts = series_from(pairs)
        end = pairs[-1][0] + 10
        mid = end / 2
        whole = ts.integrate(0, end)
        split = ts.integrate(0, mid) + ts.integrate(mid, end)
        assert whole == pytest.approx(split, rel=1e-6, abs=1e-6)


class TestCompaction:
    """Eviction past maxlen: offset advance + periodic list compaction."""

    def test_eviction_keeps_newest_samples(self):
        ts = TimeSeries(maxlen=5)
        for i in range(12):
            ts.append(float(i), float(i * 10))
        assert len(ts) == 5
        assert ts.to_lists() == (
            [7.0, 8.0, 9.0, 10.0, 11.0],
            [70.0, 80.0, 90.0, 100.0, 110.0],
        )

    def test_queries_correct_across_compaction_boundary(self):
        # maxlen=4: the backing lists compact every 4 evictions; run far
        # past several compactions and check every query path.
        ts = TimeSeries(maxlen=4)
        for i in range(25):
            ts.append(float(i), float(i))
        assert len(ts) == 4
        assert ts.value_at(23.5) == 23.0
        assert ts.value_at(20.0) is None  # evicted
        assert ts.window(21.0, 24.0) == [(22.0, 22.0), (23.0, 23.0),
                                         (24.0, 24.0)]
        assert ts.mean_over(24.0, 3.0) == pytest.approx(23.0)
        assert ts.count_over(24.0, 100.0) == 4
        assert ts.percentile_over(24.0, 100.0, 100) == 24.0

    def test_memory_stays_bounded(self):
        ts = TimeSeries(maxlen=10)
        for i in range(1000):
            ts.append(float(i), 0.0)
        # Lazy compaction keeps the backing lists under 2x maxlen.
        assert len(ts._times) <= 2 * 10
        assert len(ts) == 10

    def test_rate_and_integrate_after_eviction(self):
        ts = TimeSeries(maxlen=3)
        for i in range(10):
            ts.append(float(i), float(i))
        # Retained samples: t=7,8,9.
        assert ts.rate_over(9.0, 10.0) == pytest.approx(1.0)
        assert ts.integrate(7.0, 9.0) == pytest.approx(7.0 + 8.0)

    def test_maxlen_one(self):
        ts = TimeSeries(maxlen=1)
        for i in range(5):
            ts.append(float(i), float(i))
        assert len(ts) == 1
        assert ts.last() == 4.0
        assert ts.value_at(4.0) == 4.0

    def test_ewma_ignores_evicted_samples(self):
        ts = TimeSeries(maxlen=2)
        for i in range(6):
            ts.append(float(i), float(i))
        # Only values 4, 5 are retained; alpha=1 returns the last.
        assert ts.ewma(1.0) == 5.0
        assert ts.ewma(0.5) == pytest.approx(0.5 * 5 + 0.5 * 4)
