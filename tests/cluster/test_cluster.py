"""Unit tests for the cluster state machine."""

import pytest

from repro.cluster.cluster import Cluster, ClusterError, NodeNotFound, PodNotFound
from repro.cluster.events import (
    PodEvicted,
    PodFinished,
    PodResized,
    PodScheduled,
    PodStarted,
    PodSubmitted,
)
from repro.cluster.node import Node
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from tests.conftest import make_spec


def test_duplicate_node_names_rejected(engine):
    with pytest.raises(ClusterError):
        Cluster(
            engine,
            [Node("n", ResourceVector(cpu=1)), Node("n", ResourceVector(cpu=1))],
        )


def test_submit_enqueues_and_publishes(engine, cluster):
    seen = []
    cluster.events.subscribe(PodSubmitted, seen.append)
    pod = cluster.submit(make_spec("p0"))
    assert pod.phase == PodPhase.PENDING
    assert cluster.pending_pods() == [pod]
    assert seen[0].app == "app"


def test_duplicate_pod_name_rejected(engine, cluster):
    cluster.submit(make_spec("p0"))
    with pytest.raises(ClusterError):
        cluster.submit(make_spec("p0"))


def test_bind_transitions_and_starts_after_delay(engine, cluster):
    events = []
    cluster.events.subscribe(PodScheduled, events.append)
    cluster.events.subscribe(PodStarted, events.append)
    pod = cluster.submit(make_spec("p0"))
    cluster.bind("p0", "node-0")
    assert pod.phase == PodPhase.SCHEDULED
    assert cluster.pending_pods() == []
    engine.run_until(4.9)
    assert pod.phase == PodPhase.SCHEDULED
    engine.run_until(5.0)
    assert pod.phase == PodPhase.RUNNING
    assert pod.started_at == 5.0
    assert [type(e).__name__ for e in events] == ["PodScheduled", "PodStarted"]


def test_bind_non_pending_rejected(engine, cluster):
    cluster.submit(make_spec("p0"))
    cluster.bind("p0", "node-0")
    with pytest.raises(ClusterError):
        cluster.bind("p0", "node-1")


def test_bind_unknown_pod_or_node(engine, cluster):
    with pytest.raises(PodNotFound):
        cluster.bind("ghost", "node-0")
    cluster.submit(make_spec("p0"))
    with pytest.raises(NodeNotFound):
        cluster.bind("p0", "ghost")


def test_unknown_lookups_raise_typed_errors(engine, cluster):
    with pytest.raises(PodNotFound, match="ghost-pod"):
        cluster.get_pod("ghost-pod")
    with pytest.raises(NodeNotFound, match="ghost-node"):
        cluster.get_node("ghost-node")
    # Both are ClusterError (new callers) *and* KeyError (legacy callers),
    # and stringify like a normal error, not KeyError's repr form.
    for exc_type, trigger in (
        (PodNotFound, lambda: cluster.get_pod("x")),
        (NodeNotFound, lambda: cluster.get_node("x")),
    ):
        with pytest.raises((ClusterError, KeyError)) as info:
            trigger()
        assert isinstance(info.value, exc_type)
        kind = "pod" if exc_type is PodNotFound else "node"
        assert str(info.value) == f"unknown {kind} 'x'"


def test_finish_releases_resources(engine, cluster):
    events = []
    cluster.events.subscribe(PodFinished, events.append)
    pod = cluster.submit(make_spec("p0", cpu=2))
    cluster.bind("p0", "node-0")
    engine.run_until(10.0)
    node = cluster.get_node("node-0")
    assert node.allocated.cpu == 2
    cluster.finish("p0")
    assert pod.phase == PodPhase.SUCCEEDED
    assert node.allocated.is_zero()
    assert pod.usage.is_zero()
    assert events[0].succeeded


def test_finish_failed(engine, cluster):
    pod = cluster.submit(make_spec("p0"))
    cluster.finish("p0", succeeded=False)
    assert pod.phase == PodPhase.FAILED


def test_finish_twice_rejected(engine, cluster):
    cluster.submit(make_spec("p0"))
    cluster.finish("p0")
    with pytest.raises(ClusterError):
        cluster.finish("p0")


def test_evict_pending_pod(engine, cluster):
    events = []
    cluster.events.subscribe(PodEvicted, events.append)
    pod = cluster.submit(make_spec("p0"))
    cluster.evict("p0", reason="test")
    assert pod.phase == PodPhase.EVICTED
    assert cluster.pending_pods() == []
    assert events[0].reason == "test"


def test_evict_running_pod_releases_node(engine, cluster):
    cluster.submit(make_spec("p0", cpu=2))
    cluster.bind("p0", "node-0")
    engine.run_until(10.0)
    cluster.evict("p0")
    assert cluster.get_node("node-0").allocated.is_zero()


def test_evicted_while_starting_never_starts(engine, cluster):
    pod = cluster.submit(make_spec("p0"))
    cluster.bind("p0", "node-0")
    engine.run_until(2.0)
    cluster.evict("p0")
    engine.run_until(10.0)  # the scheduled _start callback fires harmlessly
    assert pod.phase == PodPhase.EVICTED


class TestResize:
    def test_resize_applies_after_delay(self, engine, cluster):
        events = []
        cluster.events.subscribe(PodResized, events.append)
        pod = cluster.submit(make_spec("p0", cpu=1))
        cluster.bind("p0", "node-0")
        engine.run_until(6.0)
        new_alloc = pod.allocation.replace(cpu=2)
        assert cluster.resize_pod("p0", new_alloc)
        assert pod.allocation.cpu == 1  # not yet applied
        engine.run_until(7.0)
        assert pod.allocation.cpu == 2
        assert cluster.get_node("node-0").allocated.cpu == 2
        assert events[0].old_allocation.cpu == 1

    def test_resize_pending_pod_denied(self, engine, cluster):
        cluster.submit(make_spec("p0"))
        assert not cluster.resize_pod("p0", ResourceVector(cpu=2))

    def test_resize_beyond_node_denied(self, engine, cluster):
        pod = cluster.submit(make_spec("p0", cpu=1))
        cluster.bind("p0", "node-0")
        engine.run_until(6.0)
        huge = pod.allocation.replace(cpu=10_000)
        assert not cluster.resize_pod("p0", huge)

    def test_resize_negative_denied(self, engine, cluster):
        cluster.submit(make_spec("p0"))
        cluster.bind("p0", "node-0")
        engine.run_until(6.0)
        assert not cluster.resize_pod("p0", ResourceVector(cpu=-1))

    def test_resize_dropped_if_headroom_vanishes(self, engine, cluster):
        pod = cluster.submit(make_spec("p0", cpu=1))
        cluster.bind("p0", "node-0")
        engine.run_until(6.0)
        node = cluster.get_node("node-0")
        free_cpu = node.free.cpu
        assert cluster.resize_pod("p0", pod.allocation.replace(cpu=1 + free_cpu))
        # A competing pod grabs the headroom before the resize applies.
        cluster.submit(make_spec("greedy", cpu=free_cpu))
        cluster.bind("greedy", "node-0")
        engine.run_until(8.0)
        assert pod.allocation.cpu == 1  # resize silently dropped
        node.verify_invariants()

    def test_resize_on_evicted_pod_is_noop(self, engine, cluster):
        cluster.submit(make_spec("p0"))
        cluster.bind("p0", "node-0")
        engine.run_until(6.0)
        assert cluster.resize_pod("p0", ResourceVector(cpu=2, memory=1))
        cluster.evict("p0")
        engine.run_until(8.0)  # apply callback must not crash
        cluster.verify_invariants()


def test_totals(engine, cluster):
    cluster.submit(make_spec("a", cpu=2))
    cluster.submit(make_spec("b", cpu=3))
    cluster.bind("a", "node-0")
    cluster.bind("b", "node-1")
    assert cluster.total_allocated().cpu == 5
    assert cluster.total_allocatable().cpu == 48


def test_pods_of_app_and_gang(engine, cluster):
    cluster.submit(make_spec("a-0", app="a"))
    cluster.submit(make_spec("a-1", app="a"))
    cluster.submit(make_spec("g-0", app="g", gang_id="g"))
    assert len(cluster.pods_of_app("a")) == 2
    assert len(cluster.pods_of_gang("g")) == 1


def test_verify_invariants_clean(engine, cluster):
    cluster.submit(make_spec("p0"))
    cluster.bind("p0", "node-0")
    engine.run_until(10.0)
    cluster.verify_invariants()
