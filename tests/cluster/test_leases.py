"""Unit tests for the lease primitive, scoped API views, and partitions."""

import pytest

from repro.cluster.api import PartitionError
from repro.cluster.chaos import FaultLog, PartitionInjector
from repro.cluster.cluster import ClusterError
from repro.cluster.events import LeaderDeposed, LeaderElected


TTL = 30.0


class TestLeaseVerbs:
    def test_acquire_free_lease(self, engine, api):
        lease = api.try_acquire_lease("cp", "a", TTL)
        assert lease is not None
        assert lease.holder == "a"
        assert lease.generation == 1
        assert lease.expires_at() == TTL
        assert api.get_lease("cp") == lease

    def test_live_lease_blocks_rivals(self, engine, api):
        api.try_acquire_lease("cp", "a", TTL)
        engine.run_until(TTL / 2)
        assert api.try_acquire_lease("cp", "b", TTL) is None

    def test_holder_reacquire_renews(self, engine, api):
        first = api.try_acquire_lease("cp", "a", TTL)
        engine.run_until(10.0)
        again = api.try_acquire_lease("cp", "a", TTL)
        assert again.generation == first.generation  # no holder change
        assert again.renewed_at == 10.0

    def test_expired_lease_is_stealable(self, engine, api):
        api.try_acquire_lease("cp", "a", TTL)
        engine.run_until(TTL)  # expired() is inclusive at the deadline
        stolen = api.try_acquire_lease("cp", "b", TTL)
        assert stolen is not None
        assert stolen.holder == "b"
        assert stolen.generation == 2

    def test_takeover_publishes_election_and_deposition(self, engine, api):
        elected, deposed = [], []
        api.watch(LeaderElected, elected.append)
        api.watch(LeaderDeposed, deposed.append)
        api.try_acquire_lease("cp", "a", TTL)
        engine.run_until(TTL + 1)
        api.try_acquire_lease("cp", "b", TTL)
        assert [e.holder for e in elected] == ["a", "b"]
        assert [(d.holder, d.reason) for d in deposed] == [("a", "lease-expired")]

    def test_renew_by_holder_updates_renewed_at(self, engine, api):
        api.try_acquire_lease("cp", "a", TTL)
        engine.run_until(12.0)
        lease = api.renew_lease("cp", "a")
        assert lease.renewed_at == 12.0
        assert lease.expires_at() == 12.0 + TTL

    def test_renew_fails_for_non_holder_or_expired(self, engine, api):
        assert api.renew_lease("cp", "a") is None  # never acquired
        api.try_acquire_lease("cp", "a", TTL)
        assert api.renew_lease("cp", "b") is None
        engine.run_until(TTL)
        assert api.renew_lease("cp", "a") is None  # expired under us

    def test_release_frees_lease_and_publishes(self, engine, api):
        deposed = []
        api.watch(LeaderDeposed, deposed.append)
        api.try_acquire_lease("cp", "a", TTL)
        assert not api.release_lease("cp", "b")  # only the holder may
        assert api.release_lease("cp", "a")
        assert api.get_lease("cp") is None
        assert [(d.holder, d.reason) for d in deposed] == [("a", "released")]
        # Released leases keep their generation history through re-grant.
        assert api.try_acquire_lease("cp", "b", TTL).generation == 1

    def test_nonpositive_ttl_rejected(self, engine, api):
        with pytest.raises(ClusterError):
            api.try_acquire_lease("cp", "a", 0.0)


class TestScopedAPI:
    def test_scoped_view_passes_through_when_healthy(self, engine, api):
        scoped = api.for_controller("cp-0")
        assert scoped.identity == "cp-0"
        assert not scoped.is_partitioned()
        lease = scoped.try_acquire_lease("cp", "cp-0", TTL)
        assert lease.holder == "cp-0"
        assert scoped.get_lease("cp") == lease
        assert scoped.list_pods() == []

    def test_partitioned_identity_fails_every_verb(self, engine, api):
        api.partitions = PartitionInjector()
        scoped = api.for_controller("cp-0")
        api.partitions.partition("cp-0", engine.now, duration=60.0)
        assert scoped.is_partitioned()
        assert scoped.now == engine.now  # the local clock still ticks
        for verb in (
            lambda: scoped.get_lease("cp"),
            lambda: scoped.try_acquire_lease("cp", "cp-0", TTL),
            lambda: scoped.renew_lease("cp", "cp-0"),
            lambda: scoped.release_lease("cp", "cp-0"),
            lambda: scoped.list_pods(),
            lambda: scoped.running_pods("app"),
        ):
            with pytest.raises(PartitionError):
                verb()

    def test_partition_is_per_identity(self, engine, api):
        api.partitions = PartitionInjector()
        cut = api.for_controller("cp-0")
        fine = api.for_controller("cp-1")
        api.partitions.partition("cp-0", engine.now, duration=60.0)
        with pytest.raises(PartitionError):
            cut.get_lease("cp")
        assert fine.get_lease("cp") is None  # unaffected

    def test_bounded_window_heals_itself(self, engine, api):
        api.partitions = PartitionInjector()
        scoped = api.for_controller("cp-0")
        api.partitions.partition("cp-0", engine.now, duration=30.0)
        engine.run_until(30.0)
        assert not scoped.is_partitioned()
        assert scoped.get_lease("cp") is None  # verbs work again


class TestPartitionInjector:
    def test_bounded_episode_recorded_closed(self, engine):
        log = FaultLog()
        injector = PartitionInjector(log=log)
        injector.partition("cp-0", 5.0, duration=25.0)
        (episode,) = log.by_kind("controller-partition")
        assert (episode.start, episode.end) == (5.0, 30.0)
        assert not episode.active

    def test_open_ended_until_heal(self, engine):
        log = FaultLog()
        injector = PartitionInjector(log=log)
        injector.partition("cp-0", 0.0)
        assert injector.is_partitioned("cp-0", 1e9)  # never self-heals
        injector.heal("cp-0", 40.0)
        assert not injector.is_partitioned("cp-0", 40.0)
        (episode,) = log.by_kind("controller-partition")
        assert episode.end == 40.0

    def test_double_partition_rejected(self, engine):
        injector = PartitionInjector()
        injector.partition("cp-0", 0.0, duration=10.0)
        with pytest.raises(ClusterError):
            injector.partition("cp-0", 5.0, duration=10.0)
        # ...but an expired window frees the identity for a new one.
        injector.partition("cp-0", 10.0, duration=10.0)
        assert injector.partitions_injected == 2

    def test_nonpositive_duration_rejected(self, engine):
        with pytest.raises(ValueError):
            PartitionInjector().partition("cp-0", 0.0, duration=0.0)

    def test_heal_unknown_identity_is_noop(self, engine):
        PartitionInjector().heal("ghost", 0.0)
