"""Unit tests for the event bus."""

from repro.cluster.events import (
    ClusterEvent,
    EventBus,
    PodScheduled,
    PodSubmitted,
)


def test_subscribe_receives_matching_events():
    bus = EventBus()
    seen = []
    bus.subscribe(PodSubmitted, seen.append)
    bus.publish(PodSubmitted(1.0, "p", "app"))
    assert len(seen) == 1
    assert seen[0].pod_name == "p"


def test_subscriber_filters_by_type():
    bus = EventBus()
    seen = []
    bus.subscribe(PodScheduled, seen.append)
    bus.publish(PodSubmitted(1.0, "p", "app"))
    assert seen == []


def test_base_class_subscription_catches_all():
    bus = EventBus()
    seen = []
    bus.subscribe(ClusterEvent, seen.append)
    bus.publish(PodSubmitted(1.0, "p", "app"))
    bus.publish(PodScheduled(2.0, "p", "node-0"))
    assert len(seen) == 2


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    seen = []
    unsub = bus.subscribe(PodSubmitted, seen.append)
    bus.publish(PodSubmitted(1.0, "a", "app"))
    unsub()
    bus.publish(PodSubmitted(2.0, "b", "app"))
    assert len(seen) == 1


def test_unsubscribe_twice_is_safe():
    bus = EventBus()
    unsub = bus.subscribe(PodSubmitted, lambda e: None)
    unsub()
    unsub()


def test_handler_may_unsubscribe_during_dispatch():
    bus = EventBus()
    seen = []

    def handler(event):
        seen.append(event)
        unsub()

    unsub = bus.subscribe(PodSubmitted, handler)
    bus.publish(PodSubmitted(1.0, "a", "app"))
    bus.publish(PodSubmitted(2.0, "b", "app"))
    assert len(seen) == 1


def test_delivery_order_is_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe(PodSubmitted, lambda e: order.append("first"))
    bus.subscribe(PodSubmitted, lambda e: order.append("second"))
    bus.publish(PodSubmitted(1.0, "p", "app"))
    assert order == ["first", "second"]


def test_published_counter():
    bus = EventBus()
    bus.publish(PodSubmitted(1.0, "p", "app"))
    bus.publish(PodScheduled(2.0, "p", "n"))
    assert bus.published == 2
