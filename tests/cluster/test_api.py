"""Unit tests for the ClusterAPI facade."""

from repro.cluster.events import PodStarted, PodSubmitted
from repro.cluster.pod import PodPhase, WorkloadClass
from tests.conftest import make_spec


def test_create_and_get_pod(api):
    pod = api.create_pod(make_spec("p0"))
    assert api.get_pod("p0") is pod
    assert api.pending_pods() == [pod]


def test_list_pods_selectors(api):
    api.create_pod(make_spec("m0", app="svc"))
    api.create_pod(
        make_spec("b0", app="job", workload_class=WorkloadClass.BIGDATA)
    )
    assert {p.name for p in api.list_pods()} == {"m0", "b0"}
    assert [p.name for p in api.list_pods(app="svc")] == ["m0"]
    assert [
        p.name for p in api.list_pods(workload_class=WorkloadClass.BIGDATA)
    ] == ["b0"]
    assert [p.name for p in api.list_pods(phase=PodPhase.PENDING)] != []


def test_bind_and_running_pods(engine, api):
    api.create_pod(make_spec("p0", app="svc"))
    api.bind_pod("p0", "node-0")
    assert api.running_pods("svc") == []
    engine.run_until(10.0)
    assert [p.name for p in api.running_pods("svc")] == ["p0"]


def test_delete_pod(api):
    api.create_pod(make_spec("p0"))
    api.delete_pod("p0")
    assert api.get_pod("p0").phase == PodPhase.EVICTED


def test_patch_pod_allocation(engine, api):
    api.create_pod(make_spec("p0", cpu=1))
    api.bind_pod("p0", "node-0")
    engine.run_until(6.0)
    target = api.get_pod("p0").allocation.replace(cpu=2)
    assert api.can_resize("p0", target)
    assert api.patch_pod_allocation("p0", target)
    engine.run_until(8.0)
    assert api.get_pod("p0").allocation.cpu == 2


def test_mark_finished(engine, api):
    api.create_pod(make_spec("p0"))
    api.bind_pod("p0", "node-0")
    engine.run_until(6.0)
    api.mark_finished("p0")
    assert api.get_pod("p0").phase == PodPhase.SUCCEEDED


def test_node_queries(api):
    assert len(api.list_nodes()) == 3
    assert api.get_node("node-1").name == "node-1"
    assert api.total_allocatable().cpu == 48
    assert api.total_allocated().is_zero()
    assert api.total_usage().is_zero()


def test_watch_roundtrip(engine, api):
    seen = []
    unsub = api.watch(PodSubmitted, seen.append)
    api.watch(PodStarted, seen.append)
    api.create_pod(make_spec("p0"))
    api.bind_pod("p0", "node-0")
    engine.run_until(10.0)
    assert [type(e).__name__ for e in seen] == ["PodSubmitted", "PodStarted"]
    unsub()
    api.create_pod(make_spec("p1"))
    assert len(seen) == 2


def test_now_tracks_engine(engine, api):
    engine.run_until(12.5)
    assert api.now == 12.5
