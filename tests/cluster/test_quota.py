"""Unit tests for tenant quotas."""

import pytest

from repro.cluster.cluster import ClusterError
from repro.cluster.pod import PodPhase, PodSpec, WorkloadClass
from repro.cluster.quota import QuotaManager
from repro.cluster.resources import ResourceVector
from repro.scheduler.kube import KubeScheduler
from tests.conftest import make_spec


def tenant_spec(name, tenant, cpu=2.0):
    return PodSpec(
        name=name,
        app="app",
        workload_class=WorkloadClass.MICROSERVICE,
        requests=ResourceVector(cpu=cpu, memory=1, disk_bw=5, net_bw=5),
        labels={"tenant": tenant},
    )


@pytest.fixture
def quotas(cluster):
    manager = QuotaManager()
    cluster.quotas = manager
    return manager


class TestQuotaManager:
    def test_negative_quota_rejected(self, quotas):
        with pytest.raises(ValueError):
            quotas.set_quota("acme", ResourceVector(cpu=-1))

    def test_usage_counts_active_tenant_pods(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector.uniform(100))
        cluster.submit(tenant_spec("a", "acme", cpu=2))
        cluster.submit(tenant_spec("b", "acme", cpu=3))
        cluster.submit(tenant_spec("c", "other", cpu=5))
        cluster.bind("a", "node-0")
        cluster.bind("b", "node-0")
        cluster.bind("c", "node-1")
        usage = quotas.usage("acme", cluster.pods.values())
        assert usage.cpu == 5.0

    def test_unlabelled_pods_exempt(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=0.1, memory=0.1))
        cluster.submit(make_spec("free"))
        cluster.bind("free", "node-0")  # no tenant label → no quota check

    def test_uncapped_tenant_allowed(self, engine, cluster, quotas):
        cluster.submit(tenant_spec("a", "unknown-tenant", cpu=10))
        cluster.bind("a", "node-0")


class TestBindEnforcement:
    def test_bind_blocked_at_cap(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=3, memory=10,
                                                disk_bw=100, net_bw=100))
        cluster.submit(tenant_spec("a", "acme", cpu=2))
        cluster.bind("a", "node-0")
        cluster.submit(tenant_spec("b", "acme", cpu=2))
        assert not cluster.quota_allows_bind("b")
        with pytest.raises(ClusterError, match="quota"):
            cluster.bind("b", "node-1")
        assert quotas.denials >= 1

    def test_quota_freed_on_finish(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=2, memory=10,
                                                disk_bw=100, net_bw=100))
        cluster.submit(tenant_spec("a", "acme", cpu=2))
        cluster.bind("a", "node-0")
        cluster.finish("a")
        cluster.submit(tenant_spec("b", "acme", cpu=2))
        cluster.bind("b", "node-0")  # fits again

    def test_gang_checked_in_aggregate(self, engine, cluster, quotas):
        quotas.set_quota("hpc", ResourceVector(cpu=5, memory=50,
                                               disk_bw=100, net_bw=100))
        names = []
        for i in range(3):
            spec = PodSpec(
                name=f"r{i}", app="job",
                workload_class=WorkloadClass.HPC,
                requests=ResourceVector(cpu=2, memory=1, disk_bw=1, net_bw=1),
                gang_id="g", labels={"tenant": "hpc"},
            )
            cluster.submit(spec)
            names.append(spec.name)
        # Each rank individually fits the 5-cpu cap; 3×2=6 does not.
        assert cluster.quota_allows_bind(names[0])
        assert not cluster.quota_allows_bind_all(names)


class TestResizeEnforcement:
    def test_resize_blocked_beyond_quota(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=3, memory=10,
                                                disk_bw=100, net_bw=100))
        cluster.submit(tenant_spec("a", "acme", cpu=2))
        cluster.bind("a", "node-0")
        engine.run_until(6.0)
        pod = cluster.get_pod("a")
        assert not cluster.resize_pod("a", pod.allocation.replace(cpu=4))
        assert cluster.resize_pod("a", pod.allocation.replace(cpu=3))

    def test_resize_apply_rechecks_quota(self, engine, cluster, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=4, memory=10,
                                                disk_bw=100, net_bw=100))
        cluster.submit(tenant_spec("a", "acme", cpu=1))
        cluster.submit(tenant_spec("b", "acme", cpu=1))
        cluster.bind("a", "node-0")
        cluster.bind("b", "node-1")
        engine.run_until(6.0)
        # Resize a→3 accepted (1+1→3+1=4 ≤ 4)...
        assert cluster.resize_pod("a", cluster.get_pod("a").allocation.replace(cpu=3))
        # ...but b grows first and consumes the headroom.
        assert cluster.resize_pod("b", cluster.get_pod("b").allocation.replace(cpu=2))
        engine.run_until(8.0)
        total = quotas.usage("acme", cluster.pods.values())
        assert total.cpu <= 4.0 + 1e-9


class TestSchedulerIntegration:
    def test_scheduler_skips_quota_blocked_pods(self, engine, cluster, api, quotas):
        quotas.set_quota("acme", ResourceVector(cpu=2, memory=10,
                                                disk_bw=100, net_bw=100))
        scheduler = KubeScheduler(engine, api, interval=1.0)
        scheduler.start()
        cluster.submit(tenant_spec("a", "acme", cpu=2))
        cluster.submit(tenant_spec("b", "acme", cpu=2))
        engine.run_until(2.0)
        phases = {cluster.get_pod(n).phase for n in ("a", "b")}
        assert PodPhase.PENDING in phases  # one blocked, none crashed
        bound = [n for n in ("a", "b") if cluster.get_pod(n).node_name]
        assert len(bound) == 1
