"""Unit tests for Node accounting."""

import pytest

from repro.cluster.node import Node, NodeError, total_capacity
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector
from tests.conftest import make_spec


CAP = ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=500)


def make_pod(name="p0", cpu=1.0, memory=1.0):
    return Pod(make_spec(name, cpu=cpu, memory=memory), created_at=0.0)


def test_allocatable_subtracts_reserve():
    node = Node("n", CAP, system_reserved=ResourceVector(cpu=1, memory=2))
    assert node.allocatable == ResourceVector(cpu=7, memory=30, disk_bw=200, net_bw=500)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        Node("n", ResourceVector(cpu=-1))


def test_bind_accounts_allocation():
    node = Node("n", CAP)
    pod = make_pod(cpu=2, memory=4)
    node.bind(pod)
    assert node.allocated == pod.allocation
    assert node.free == (CAP - pod.allocation)
    node.verify_invariants()


def test_bind_rejects_duplicate():
    node = Node("n", CAP)
    pod = make_pod()
    node.bind(pod)
    with pytest.raises(NodeError):
        node.bind(pod)


def test_bind_rejects_overflow():
    node = Node("n", ResourceVector(cpu=1, memory=1, disk_bw=10, net_bw=10))
    with pytest.raises(NodeError):
        node.bind(make_pod(cpu=2))


def test_release_returns_capacity():
    node = Node("n", CAP)
    pod = make_pod(cpu=2)
    node.bind(pod)
    node.release(pod)
    assert node.allocated.is_zero()
    assert node.free == node.allocatable
    node.verify_invariants()


def test_release_unknown_pod():
    node = Node("n", CAP)
    with pytest.raises(NodeError):
        node.release(make_pod())


def test_can_fit():
    node = Node("n", ResourceVector(cpu=4, memory=8, disk_bw=100, net_bw=100))
    node.bind(make_pod(cpu=3, memory=1))
    assert node.can_fit(ResourceVector(cpu=1, memory=1, disk_bw=1, net_bw=1))
    assert not node.can_fit(ResourceVector(cpu=2, memory=1, disk_bw=1, net_bw=1))


def test_resize_within_headroom():
    node = Node("n", CAP)
    pod = make_pod(cpu=2)
    node.bind(pod)
    bigger = pod.allocation.replace(cpu=4)
    assert node.headroom_for_resize(pod, bigger)
    node.apply_resize(pod, bigger)
    assert pod.allocation.cpu == 4
    node.verify_invariants()


def test_resize_beyond_headroom_rejected():
    node = Node("n", ResourceVector(cpu=4, memory=8, disk_bw=50, net_bw=50))
    pod = make_pod(cpu=2)
    node.bind(pod)
    with pytest.raises(NodeError):
        node.apply_resize(pod, pod.allocation.replace(cpu=10))


def test_resize_unbound_pod_rejected():
    node = Node("n", CAP)
    with pytest.raises(NodeError):
        node.headroom_for_resize(make_pod(), ResourceVector(cpu=1))


def test_usage_aggregates_pods():
    node = Node("n", CAP)
    p1, p2 = make_pod("a", cpu=2), make_pod("b", cpu=2)
    node.bind(p1)
    node.bind(p2)
    p1.record_usage(ResourceVector(cpu=1))
    p2.record_usage(ResourceVector(cpu=0.5))
    assert node.usage().cpu == pytest.approx(1.5)
    assert node.usage_fraction()["cpu"] == pytest.approx(1.5 / 8)


def test_allocation_fraction():
    node = Node("n", CAP)
    node.bind(make_pod(cpu=4))
    assert node.allocation_fraction()["cpu"] == pytest.approx(0.5)


def test_pods_by_priority():
    node = Node("n", CAP)
    low = Pod(make_spec("low", priority=1), created_at=0.0)
    high = Pod(make_spec("high", priority=10), created_at=0.0)
    node.bind(high)
    node.bind(low)
    assert [p.name for p in node.pods_by_priority()] == ["low", "high"]


def test_total_capacity():
    nodes = [Node(f"n{i}", CAP) for i in range(3)]
    assert total_capacity(nodes) == CAP * 3


def test_invariant_detects_drift():
    node = Node("n", CAP)
    pod = make_pod(cpu=2)
    node.bind(pod)
    pod.allocation = pod.allocation.replace(cpu=3)  # bypass apply_resize
    with pytest.raises(NodeError):
        node.verify_invariants()
