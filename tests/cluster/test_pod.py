"""Unit tests for Pod and PodSpec."""

import pytest

from repro.cluster.pod import Pod, PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from tests.conftest import make_spec


def test_spec_rejects_negative_request():
    with pytest.raises(ValueError):
        PodSpec(
            name="p",
            app="a",
            workload_class=WorkloadClass.MICROSERVICE,
            requests=ResourceVector(cpu=-1),
        )


def test_new_pod_starts_pending():
    pod = Pod(make_spec(), created_at=3.0)
    assert pod.phase == PodPhase.PENDING
    assert pod.node_name is None
    assert pod.created_at == 3.0
    assert not pod.active and not pod.terminal


def test_allocation_defaults_to_requests():
    spec = make_spec(cpu=2, memory=4)
    pod = Pod(spec, created_at=0.0)
    assert pod.allocation == spec.requests


def test_record_usage_enforced_at_allocation():
    pod = Pod(make_spec(cpu=1, memory=1, disk_bw=10, net_bw=10), created_at=0.0)
    pod.record_usage(ResourceVector(cpu=5, memory=0.5, disk_bw=50, net_bw=5))
    assert pod.usage == ResourceVector(cpu=1, memory=0.5, disk_bw=10, net_bw=5)


def test_record_usage_clamps_negative():
    pod = Pod(make_spec(), created_at=0.0)
    pod.record_usage(ResourceVector(cpu=-1))
    assert not pod.usage.any_negative(tolerance=0)


def test_scheduling_latency():
    pod = Pod(make_spec(), created_at=2.0)
    assert pod.scheduling_latency() is None
    pod.scheduled_at = 7.5
    assert pod.scheduling_latency() == 5.5


@pytest.mark.parametrize(
    "phase,active,terminal",
    [
        (PodPhase.PENDING, False, False),
        (PodPhase.SCHEDULED, True, False),
        (PodPhase.RUNNING, True, False),
        (PodPhase.SUCCEEDED, False, True),
        (PodPhase.FAILED, False, True),
        (PodPhase.EVICTED, False, True),
    ],
)
def test_phase_predicates(phase, active, terminal):
    pod = Pod(make_spec(), created_at=0.0)
    pod.phase = phase
    assert pod.active is active
    assert pod.terminal is terminal
