"""Unit + property tests for ResourceVector."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import RESOURCES, ResourceVector


def vectors(min_value=0.0, max_value=1e6):
    component = st.floats(
        min_value=min_value, max_value=max_value, allow_nan=False, allow_infinity=False
    )
    return st.builds(ResourceVector, component, component, component, component)


class TestBasics:
    def test_zero(self):
        assert ResourceVector.zero().is_zero()

    def test_uniform(self):
        v = ResourceVector.uniform(2.0)
        assert all(x == 2.0 for x in v)

    def test_from_dict_defaults_missing(self):
        v = ResourceVector.from_dict({"cpu": 2})
        assert v.cpu == 2 and v.memory == 0 and v.disk_bw == 0 and v.net_bw == 0

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(KeyError):
            ResourceVector.from_dict({"gpu": 1})

    def test_getitem(self):
        v = ResourceVector(1, 2, 3, 4)
        assert [v[n] for n in RESOURCES] == [1, 2, 3, 4]

    def test_getitem_unknown(self):
        with pytest.raises(KeyError):
            ResourceVector()["gpu"]

    def test_immutability(self):
        v = ResourceVector(1, 1, 1, 1)
        with pytest.raises(AttributeError):
            v.cpu = 5.0

    def test_as_dict_roundtrip(self):
        v = ResourceVector(1, 2, 3, 4)
        assert ResourceVector.from_dict(v.as_dict()) == v

    def test_equality_and_hash(self):
        assert ResourceVector(1, 2, 3, 4) == ResourceVector(1, 2, 3, 4)
        assert hash(ResourceVector(1, 2, 3, 4)) == hash(ResourceVector(1, 2, 3, 4))
        assert ResourceVector(1, 2, 3, 4) != ResourceVector(1, 2, 3, 5)


class TestArithmetic:
    def test_add_sub(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(4, 3, 2, 1)
        assert a + b == ResourceVector(5, 5, 5, 5)
        assert (a + b) - b == a

    def test_scalar_mul_div(self):
        v = ResourceVector(1, 2, 3, 4)
        assert v * 2 == ResourceVector(2, 4, 6, 8)
        assert 2 * v == v * 2
        assert (v * 2) / 2 == v

    def test_elementwise_min_max(self):
        a = ResourceVector(1, 5, 3, 7)
        b = ResourceVector(2, 4, 6, 1)
        assert a.elementwise_min(b) == ResourceVector(1, 4, 3, 1)
        assert a.elementwise_max(b) == ResourceVector(2, 5, 6, 7)

    def test_elementwise_mul(self):
        a = ResourceVector(1, 2, 3, 4)
        assert a.elementwise_mul(ResourceVector(2, 2, 2, 2)) == a * 2

    def test_clamp(self):
        v = ResourceVector(-1, 5, 10, 0.5)
        lo = ResourceVector(0, 0, 0, 1)
        hi = ResourceVector(4, 4, 4, 4)
        assert v.clamp(lo, hi) == ResourceVector(0, 4, 4, 1)

    def test_scale_named_dims(self):
        v = ResourceVector(2, 2, 2, 2)
        scaled = v.scale({"cpu": 2.0, "net_bw": 0.5})
        assert scaled == ResourceVector(4, 2, 2, 1)

    def test_scale_unknown_dim(self):
        with pytest.raises(KeyError):
            ResourceVector().scale({"gpu": 2.0})

    def test_replace(self):
        v = ResourceVector(1, 2, 3, 4).replace(memory=9)
        assert v == ResourceVector(1, 9, 3, 4)


class TestPredicates:
    def test_fits_within(self):
        small = ResourceVector(1, 1, 1, 1)
        big = ResourceVector(2, 2, 2, 2)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_tolerance(self):
        a = ResourceVector(1 + 1e-12, 1, 1, 1)
        assert a.fits_within(ResourceVector(1, 1, 1, 1))

    def test_any_negative(self):
        assert ResourceVector(-1, 0, 0, 0).any_negative()
        assert not ResourceVector(0, 0, 0, 0).any_negative()

    def test_dominant_share(self):
        usage = ResourceVector(8, 16, 100, 100)
        cap = ResourceVector(16, 64, 500, 1250)
        assert usage.dominant_share(cap) == pytest.approx(0.5)

    def test_bottleneck(self):
        usage = ResourceVector(2, 2, 400, 10)
        cap = ResourceVector(16, 64, 500, 1250)
        assert usage.bottleneck(cap) == "disk_bw"

    def test_fraction_with_zero_capacity(self):
        fractions = ResourceVector(1, 1, 1, 1).total_fraction_of(
            ResourceVector(2, 0, 2, 2)
        )
        assert fractions["memory"] == 0.0


class TestProperties:
    @given(vectors(), vectors())
    def test_addition_commutes(self, a, b):
        assert (a + b).approx_equal(b + a)

    @given(vectors(), vectors(), vectors())
    def test_addition_associates(self, a, b, c):
        assert ((a + b) + c).approx_equal(a + (b + c), tolerance=1e-6)

    @given(vectors())
    def test_zero_identity(self, v):
        assert (v + ResourceVector.zero()).approx_equal(v)

    @given(vectors(), vectors())
    def test_min_fits_within_both(self, a, b):
        m = a.elementwise_min(b)
        assert m.fits_within(a) and m.fits_within(b)

    @given(vectors(), vectors())
    def test_both_fit_within_max(self, a, b):
        m = a.elementwise_max(b)
        assert a.fits_within(m) and b.fits_within(m)

    @given(vectors(min_value=-1e6))
    def test_clamp_nonnegative_never_negative(self, v):
        assert not v.clamp_nonnegative().any_negative(tolerance=0)

    @given(vectors(), vectors(max_value=1e3), vectors(max_value=1e3))
    def test_clamp_respects_bounds(self, v, lo_raw, hi_raw):
        lo = lo_raw.elementwise_min(hi_raw)
        hi = lo_raw.elementwise_max(hi_raw)
        clamped = v.clamp(lo, hi)
        assert lo.fits_within(clamped) and clamped.fits_within(hi)

    @given(vectors(max_value=1e3), vectors(min_value=0.1, max_value=1e3))
    def test_dominant_share_bounds_fractions(self, usage, cap):
        share = usage.dominant_share(cap)
        for frac in usage.total_fraction_of(cap).values():
            assert frac <= share + 1e-9
