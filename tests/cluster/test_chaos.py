"""Unit tests for failure injection."""

import numpy as np
import pytest

from repro.cluster.chaos import ChaosMonkey, FailureInjector
from repro.cluster.cluster import ClusterError
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from tests.conftest import make_spec


@pytest.fixture
def injector(cluster):
    return FailureInjector(cluster)


class TestFailureInjector:
    def test_fail_evicts_resident_pods(self, engine, cluster, injector):
        cluster.submit(make_spec("a", cpu=2))
        cluster.submit(make_spec("b", cpu=2))
        cluster.bind("a", "node-0")
        cluster.bind("b", "node-1")
        engine.run_until(10.0)
        failure = injector.fail_node("node-0")
        assert failure.evicted_pods == ("a",)
        assert cluster.get_pod("a").phase == PodPhase.EVICTED
        assert cluster.get_pod("b").phase == PodPhase.RUNNING
        cluster.verify_invariants()

    def test_failed_node_rejects_bindings(self, engine, cluster, injector):
        injector.fail_node("node-0")
        cluster.submit(make_spec("p"))
        with pytest.raises(Exception):
            cluster.bind("p", "node-0")

    def test_failed_node_has_zero_capacity(self, cluster, injector):
        injector.fail_node("node-0")
        node = cluster.get_node("node-0")
        assert node.allocatable.is_zero()
        assert not node.can_fit(ResourceVector(cpu=0.1))

    def test_double_failure_rejected(self, cluster, injector):
        injector.fail_node("node-0")
        with pytest.raises(ClusterError):
            injector.fail_node("node-0")

    def test_recover_restores_capacity(self, engine, cluster, injector):
        original = cluster.get_node("node-0").allocatable
        injector.fail_node("node-0")
        injector.recover_node("node-0")
        assert cluster.get_node("node-0").allocatable == original
        assert not injector.is_failed("node-0")
        # Bindable again.
        cluster.submit(make_spec("p"))
        cluster.bind("p", "node-0")

    def test_recover_unfailed_rejected(self, cluster, injector):
        with pytest.raises(ClusterError):
            injector.recover_node("node-0")

    def test_healthy_nodes_listing(self, cluster, injector):
        injector.fail_node("node-1")
        assert [n.name for n in injector.healthy_nodes()] == ["node-0", "node-2"]
        assert injector.failed_nodes() == ["node-1"]

    def test_failure_log(self, engine, cluster, injector):
        engine.run_until(42.0)
        injector.fail_node("node-0")
        assert injector.failures[0].time == 42.0
        assert injector.failures[0].node_name == "node-0"


class TestChaosMonkey:
    def test_strikes_and_repairs(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(1),
            mtbf=100.0, repair_time=50.0,
        )
        monkey.start()
        engine.run_until(2000.0)
        assert len(injector.failures) >= 5
        assert injector.recoveries >= len(injector.failures) - 1

    def test_respects_concurrency_cap(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(2),
            mtbf=10.0, repair_time=10_000.0, max_concurrent_failures=2,
        )
        monkey.start()
        engine.run_until(500.0)
        assert len(injector.failed_nodes()) <= 2

    def test_stop_halts_strikes(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(3),
            mtbf=50.0, repair_time=10.0,
        )
        monkey.start()
        engine.run_until(200.0)
        count = len(injector.failures)
        monkey.stop()
        engine.run_until(2000.0)
        assert len(injector.failures) == count

    def test_deterministic_given_seed(self, engine, cluster):
        def run(seed):
            from tests.conftest import make_cluster
            from repro.sim.engine import Engine
            eng = Engine()
            clus = make_cluster(eng)
            inj = FailureInjector(clus)
            monkey = ChaosMonkey(eng, inj, np.random.default_rng(seed),
                                 mtbf=100.0, repair_time=30.0)
            monkey.start()
            eng.run_until(1000.0)
            return [(f.time, f.node_name) for f in inj.failures]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_params(self, engine, cluster, injector):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, mtbf=0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, repair_time=0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, max_concurrent_failures=0)
