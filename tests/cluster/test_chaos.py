"""Unit tests for failure injection."""

import numpy as np
import pytest

from repro.cluster.chaos import (
    ChaosMonkey,
    DataLossDomain,
    DegradationInjector,
    ExecutorKillDomain,
    FailureInjector,
    FaultLog,
    NodeCrashDomain,
    NodeDegradationDomain,
    StragglerDomain,
    ZoneOutageDomain,
)
from repro.cluster.cluster import ClusterError
from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.storage.objectstore import ObjectStore
from tests.conftest import make_spec


@pytest.fixture
def injector(cluster):
    return FailureInjector(cluster)


@pytest.fixture
def degrader(cluster):
    return DegradationInjector(cluster)


class TestFailureInjector:
    def test_fail_evicts_resident_pods(self, engine, cluster, injector):
        cluster.submit(make_spec("a", cpu=2))
        cluster.submit(make_spec("b", cpu=2))
        cluster.bind("a", "node-0")
        cluster.bind("b", "node-1")
        engine.run_until(10.0)
        failure = injector.fail_node("node-0")
        assert failure.evicted_pods == ("a",)
        assert cluster.get_pod("a").phase == PodPhase.EVICTED
        assert cluster.get_pod("b").phase == PodPhase.RUNNING
        cluster.verify_invariants()

    def test_failed_node_rejects_bindings(self, engine, cluster, injector):
        injector.fail_node("node-0")
        cluster.submit(make_spec("p"))
        with pytest.raises(Exception):
            cluster.bind("p", "node-0")

    def test_failed_node_has_zero_capacity(self, cluster, injector):
        injector.fail_node("node-0")
        node = cluster.get_node("node-0")
        assert node.allocatable.is_zero()
        assert not node.can_fit(ResourceVector(cpu=0.1))

    def test_double_failure_rejected(self, cluster, injector):
        injector.fail_node("node-0")
        with pytest.raises(ClusterError):
            injector.fail_node("node-0")

    def test_recover_restores_capacity(self, engine, cluster, injector):
        original = cluster.get_node("node-0").allocatable
        injector.fail_node("node-0")
        injector.recover_node("node-0")
        assert cluster.get_node("node-0").allocatable == original
        assert not injector.is_failed("node-0")
        # Bindable again.
        cluster.submit(make_spec("p"))
        cluster.bind("p", "node-0")

    def test_recover_unfailed_rejected(self, cluster, injector):
        with pytest.raises(ClusterError):
            injector.recover_node("node-0")

    def test_healthy_nodes_listing(self, cluster, injector):
        injector.fail_node("node-1")
        assert [n.name for n in injector.healthy_nodes()] == ["node-0", "node-2"]
        assert injector.failed_nodes() == ["node-1"]

    def test_failure_log(self, engine, cluster, injector):
        engine.run_until(42.0)
        injector.fail_node("node-0")
        assert injector.failures[0].time == 42.0
        assert injector.failures[0].node_name == "node-0"

    def test_episodes_opened_and_closed(self, engine, cluster, injector):
        engine.run_until(10.0)
        injector.fail_node("node-0")
        episode = injector.log.episodes[0]
        assert episode.kind == "node-crash" and episode.active
        engine.run_until(60.0)
        injector.recover_node("node-0")
        assert not episode.active
        assert episode.duration() == pytest.approx(50.0)

    def test_recover_preserves_capacity_change_made_while_down(
        self, cluster, injector
    ):
        """Delta-restore: recovery must not clobber operator resizes that
        happened while the node was dark (the stale-snapshot bug)."""
        node = cluster.get_node("node-0")
        injector.fail_node("node-0")
        # Operator shrinks the machine while it is down (e.g. a flaky DIMM
        # is pulled): capacity and the healthy ceiling drop with it.
        node.capacity = node.capacity.replace(cpu=node.capacity.cpu / 2)
        injector.recover_node("node-0")
        # The restored allocatable is clamped to the *new* nominal ceiling,
        # not the pre-failure snapshot.
        assert node.allocatable.cpu == node.capacity.cpu
        assert node.allocatable.memory == pytest.approx(64.0)

    def test_recover_composes_with_degradation(self, cluster, injector, degrader):
        """A degradation applied before the crash survives crash recovery
        until the degradation itself is restored."""
        node = cluster.get_node("node-0")
        degrader.degrade_node("node-0", 0.5)
        assert node.allocatable.cpu == pytest.approx(8.0)
        injector.fail_node("node-0")
        assert node.allocatable.is_zero()
        injector.recover_node("node-0")
        # Back to the degraded level, not full capacity.
        assert node.allocatable.cpu == pytest.approx(8.0)
        degrader.restore_node("node-0")
        assert node.allocatable.cpu == pytest.approx(16.0)


class TestDegradationInjector:
    def test_degrade_shrinks_allocatable(self, cluster, degrader):
        node = cluster.get_node("node-0")
        degrader.degrade_node("node-0", 0.25)
        assert node.allocatable.cpu == pytest.approx(4.0)
        assert degrader.is_degraded("node-0")
        assert degrader.degraded_nodes() == ["node-0"]

    def test_degrade_evicts_lowest_priority_first(self, engine, cluster, degrader):
        cluster.submit(make_spec("low", cpu=6, priority=0))
        cluster.submit(make_spec("high", cpu=6, priority=10))
        cluster.bind("low", "node-0")
        cluster.bind("high", "node-0")
        engine.run_until(10.0)
        # 25% of 16 cores = 4: only one 6-core pod cannot fit either; both
        # cannot; the low-priority one goes first, then the high one.
        degrader.degrade_node("node-0", 0.5)  # 8 cores: evict one pod
        assert cluster.get_pod("low").phase == PodPhase.EVICTED
        assert cluster.get_pod("high").phase == PodPhase.RUNNING
        assert degrader.evictions == 1
        cluster.verify_invariants()

    def test_survivors_keep_running(self, engine, cluster, degrader):
        cluster.submit(make_spec("small", cpu=2))
        cluster.bind("small", "node-0")
        engine.run_until(10.0)
        degrader.degrade_node("node-0", 0.5)
        assert cluster.get_pod("small").phase == PodPhase.RUNNING

    def test_restore_returns_capacity(self, cluster, degrader):
        node = cluster.get_node("node-0")
        original = node.allocatable
        degrader.degrade_node("node-0", 0.5)
        degrader.restore_node("node-0")
        assert node.allocatable == original
        assert not degrader.is_degraded("node-0")

    def test_double_degrade_rejected(self, cluster, degrader):
        degrader.degrade_node("node-0", 0.5)
        with pytest.raises(ClusterError):
            degrader.degrade_node("node-0", 0.5)

    def test_restore_undegraded_rejected(self, cluster, degrader):
        with pytest.raises(ClusterError):
            degrader.restore_node("node-0")

    def test_invalid_factor(self, cluster, degrader):
        for factor in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                degrader.degrade_node("node-0", factor)

    def test_episode_logged(self, engine, cluster, degrader):
        engine.run_until(5.0)
        degrader.degrade_node("node-0", 0.5)
        engine.run_until(25.0)
        degrader.restore_node("node-0")
        episode = degrader.log.episodes[0]
        assert episode.kind == "node-degradation"
        assert episode.duration() == pytest.approx(20.0)


class TestChaosMonkey:
    def test_strikes_and_repairs(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(1),
            mtbf=100.0, repair_time=50.0,
        )
        monkey.start()
        engine.run_until(2000.0)
        assert len(injector.failures) >= 5
        assert injector.recoveries >= len(injector.failures) - 1

    def test_respects_concurrency_cap(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(2),
            mtbf=10.0, repair_time=10_000.0, max_concurrent_failures=2,
        )
        monkey.start()
        engine.run_until(500.0)
        assert len(injector.failed_nodes()) <= 2

    def test_stop_halts_strikes(self, engine, cluster, injector):
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(3),
            mtbf=50.0, repair_time=10.0,
        )
        monkey.start()
        engine.run_until(200.0)
        count = len(injector.failures)
        monkey.stop()
        engine.run_until(2000.0)
        assert len(injector.failures) == count

    def test_deterministic_given_seed(self, engine, cluster):
        def run(seed):
            from tests.conftest import make_cluster
            from repro.sim.engine import Engine
            eng = Engine()
            clus = make_cluster(eng)
            inj = FailureInjector(clus)
            monkey = ChaosMonkey(eng, inj, np.random.default_rng(seed),
                                 mtbf=100.0, repair_time=30.0)
            monkey.start()
            eng.run_until(1000.0)
            return [(f.time, f.node_name) for f in inj.failures]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_params(self, engine, cluster, injector):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, mtbf=0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, repair_time=0)
        with pytest.raises(ValueError):
            ChaosMonkey(engine, injector, rng, max_concurrent_failures=0)

    def test_bursty_strikes_never_exceed_cap(self, engine, cluster, injector, degrader):
        """Near-continuous Poisson strikes with slow repairs: the cap must
        hold at every instant, across fault domains."""
        rng = np.random.default_rng(9)
        monkey = ChaosMonkey(
            engine, injector, rng,
            mtbf=2.0, repair_time=5000.0, max_concurrent_failures=2,
            domains=[
                NodeCrashDomain(injector, rng),
                NodeDegradationDomain(degrader, rng, factor=0.5),
            ],
        )
        monkey.start()
        for t in range(10, 500, 10):
            engine.run_until(float(t))
            assert monkey.active_faults() <= 2
            assert (
                len(injector.failed_nodes()) + len(degrader.degraded_nodes()) <= 2
            )
        assert monkey.strikes >= 1

    def test_stop_lets_scheduled_heals_run(self, engine, cluster, injector):
        """fail → stop → repair ordering: stopping the monkey must not
        orphan active faults — their heals are already scheduled."""
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(4),
            mtbf=20.0, repair_time=100.0,
        )
        monkey.start()
        while not injector.failed_nodes():
            engine.run_until(engine.now + 10.0)
        monkey.stop()
        engine.run_until(engine.now + 200.0)
        assert injector.failed_nodes() == []
        assert injector.recoveries == len(injector.failures)
        assert monkey.active_faults() == 0

    def test_heal_tolerates_external_recovery(self, engine, cluster, injector):
        """An operator recovering the node before the monkey's heal fires
        must not crash the heal."""
        monkey = ChaosMonkey(
            engine, injector, np.random.default_rng(6),
            mtbf=20.0, repair_time=500.0,
        )
        monkey.start()
        while not injector.failed_nodes():
            engine.run_until(engine.now + 10.0)
        injector.recover_node(injector.failed_nodes()[0])
        engine.run_until(engine.now + 1000.0)  # monkey heal fires harmlessly
        assert injector.recoveries >= 1

    def test_multi_domain_deterministic_replay(self, engine, cluster):
        """Same seed → identical episode sequence across fault domains."""

        def run(seed):
            from repro.sim.engine import Engine
            from tests.conftest import make_cluster

            eng = Engine()
            clus = make_cluster(eng)
            log = FaultLog()
            inj = FailureInjector(clus, log=log)
            deg = DegradationInjector(clus, log=log)
            rng = np.random.default_rng(seed)
            monkey = ChaosMonkey(
                eng, inj, rng, mtbf=50.0, repair_time=30.0,
                max_concurrent_failures=2,
                domains=[
                    NodeCrashDomain(inj, rng),
                    NodeDegradationDomain(deg, rng, factor=0.5),
                ],
            )
            monkey.start()
            eng.run_until(2000.0)
            return [(e.kind, e.target, e.start) for e in log.episodes]

        first = run(7)
        assert first == run(7)
        assert first != run(8)
        assert {kind for kind, _, _ in first} == {"node-crash", "node-degradation"}

    def test_default_monkey_matches_explicit_crash_domain(self):
        """The default (crash-only) monkey must not burn extra RNG draws on
        domain selection — seeded legacy experiments must replay identically
        whether the domain list is implicit or explicit."""
        from repro.sim.engine import Engine
        from tests.conftest import make_cluster

        def run(explicit):
            eng = Engine()
            inj = FailureInjector(make_cluster(eng))
            rng = np.random.default_rng(7)
            domains = [NodeCrashDomain(inj, rng)] if explicit else None
            monkey = ChaosMonkey(eng, inj, rng, mtbf=100.0, repair_time=30.0,
                                 domains=domains)
            monkey.start()
            eng.run_until(1000.0)
            return [(f.time, f.node_name) for f in inj.failures]

        assert run(explicit=False) == run(explicit=True)


@pytest.fixture
def zoned_cluster(engine):
    from repro.cluster.cluster import Cluster, ClusterConfig
    from repro.cluster.node import Node

    nodes = [
        Node(
            f"node-{z}-{i}",
            ResourceVector(cpu=8, memory=32, disk_bw=100, net_bw=100),
            labels={"zone": f"z{z}"},
        )
        for z in range(3)
        for i in range(2)
    ]
    return Cluster(engine, nodes, config=ClusterConfig(startup_delay=5.0))


class TestZoneOutageDomain:
    def test_strike_zone_fails_whole_zone_one_episode(
        self, engine, zoned_cluster
    ):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        zoned_cluster.submit(make_spec("a", cpu=2))
        zoned_cluster.submit(make_spec("b", cpu=2))
        zoned_cluster.bind("a", "node-1-0")
        zoned_cluster.bind("b", "node-1-1")
        engine.run_until(10.0)
        token = dom.strike_zone("z1")
        assert injector.failed_nodes() == ["node-1-0", "node-1-1"]
        assert zoned_cluster.get_pod("a").phase == PodPhase.EVICTED
        assert zoned_cluster.get_pod("b").phase == PodPhase.EVICTED
        assert dom.outages == 1 and dom.pods_displaced == 2
        # One zone-outage episode for the whole strike, blast radius in
        # the detail; per-node crash episodes ride underneath it.
        episodes = injector.log.by_kind("zone-outage")
        assert len(episodes) == 1
        assert episodes[0].target == "z1" and episodes[0].active
        assert episodes[0].detail == "nodes=2 pods_displaced=2"
        assert len(injector.log.by_kind("node-crash")) == 2
        zone, victims, _ = token
        assert zone == "z1" and victims == ("node-1-0", "node-1-1")

    def test_heal_recovers_and_closes_episode(self, engine, zoned_cluster):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        engine.run_until(10.0)
        token = dom.strike_zone("z0")
        engine.run_until(50.0)
        dom.heal(token)
        assert injector.failed_nodes() == []
        episode = injector.log.by_kind("zone-outage")[0]
        assert not episode.active
        assert episode.duration() == pytest.approx(40.0)

    def test_heal_tolerates_external_recovery(self, engine, zoned_cluster):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        token = dom.strike_zone("z2")
        injector.recover_node("node-2-0")  # operator beat the domain to it
        dom.heal(token)  # must not raise on the already-healthy node
        assert injector.failed_nodes() == []

    def test_zones_lists_only_healthy_zones(self, engine, zoned_cluster):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        assert dom.zones() == ["z0", "z1", "z2"]
        dom.strike_zone("z1")
        assert dom.zones() == ["z0", "z2"]

    def test_strike_empty_zone_rejected(self, engine, zoned_cluster):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        with pytest.raises(ClusterError):
            dom.strike_zone("nope")

    def test_random_strike_needs_rng(self, engine, zoned_cluster):
        injector = FailureInjector(zoned_cluster)
        dom = ZoneOutageDomain(injector)
        with pytest.raises(ClusterError):
            dom.strike()
        seeded = ZoneOutageDomain(injector, np.random.default_rng(7))
        token = seeded.strike()
        assert token is not None and seeded.outages == 1

    def test_unlabelled_cluster_has_no_zones(self, engine, cluster):
        injector = FailureInjector(cluster)
        dom = ZoneOutageDomain(injector, np.random.default_rng(7))
        assert dom.zones() == []
        assert dom.strike() is None


class TestFaultLogCloseOpen:
    def test_closes_only_open_episodes(self):
        log = FaultLog()
        done = log.open("node-crash", "node-0", 10.0)
        log.close(done, 20.0)
        still_open = log.open("zone-outage", "z1", 30.0)
        assert log.close_open(100.0) == 1
        assert not still_open.active
        assert still_open.duration() == pytest.approx(70.0)
        assert done.duration() == pytest.approx(10.0)  # untouched

    def test_idempotent(self):
        log = FaultLog()
        log.open("brownout", "svc", 5.0)
        assert log.close_open(50.0) == 1
        assert log.close_open(60.0) == 0
        assert log.episodes[0].end == 50.0


class TestExecutorKillDomain:
    def test_strike_evicts_running_bigdata_pod(self, engine, cluster):
        cluster.submit(make_spec("svc", workload_class=WorkloadClass.MICROSERVICE))
        cluster.submit(make_spec("exec-1", workload_class=WorkloadClass.BIGDATA))
        cluster.bind("svc", "node-0")
        cluster.bind("exec-1", "node-1")
        engine.run_until(10.0)
        log = FaultLog()
        dom = ExecutorKillDomain(cluster, np.random.default_rng(7), log=log)
        victim = dom.strike()
        assert victim == "exec-1"  # the microservice is out of scope
        assert cluster.get_pod("exec-1").phase == PodPhase.EVICTED
        assert cluster.get_pod("svc").phase == PodPhase.RUNNING
        assert dom.kills == 1
        assert log.episodes[0].kind == "executor-kill"
        assert log.episodes[0].domain == "executor-kill"
        dom.heal(victim)  # no-op by contract

    def test_no_candidates_is_a_noop(self, engine, cluster):
        dom = ExecutorKillDomain(cluster, np.random.default_rng(7))
        assert dom.strike() is None
        assert dom.kills == 0


class TestStragglerDomain:
    def test_strike_slows_and_heal_restores(self, engine, cluster):
        log = FaultLog()
        dom = StragglerDomain(
            cluster, np.random.default_rng(7), factor=0.25, log=log
        )
        token = dom.strike()
        assert token is not None
        name, episode = token
        assert cluster.get_node(name).speed_factor == 0.25
        assert episode.kind == "node-straggler" and episode.active
        assert episode.domain == "straggler"
        dom.heal(token)
        assert cluster.get_node(name).speed_factor == 1.0
        assert not episode.active

    def test_already_slow_nodes_not_restruck(self, cluster):
        dom = StragglerDomain(cluster, np.random.default_rng(7))
        for _ in range(3):
            dom.strike()
        assert dom.strikes == 3
        assert dom.strike() is None  # every node already slowed

    def test_dark_nodes_excluded(self, cluster):
        injector = FailureInjector(cluster)
        for name in ("node-0", "node-1", "node-2"):
            injector.fail_node(name)
        dom = StragglerDomain(cluster, np.random.default_rng(7))
        assert dom.strike() is None

    def test_invalid_factor(self, cluster):
        with pytest.raises(ValueError):
            StragglerDomain(cluster, np.random.default_rng(7), factor=1.0)


class TestDataLossDomain:
    def test_strike_wipes_one_nodes_replicas(self, engine, cluster):
        store = ObjectStore()
        store.create_bucket("d")
        store.put("d", "k1", 10.0, {"node-0", "node-1"})
        store.put("d", "k2", 5.0, {"node-1"})
        log = FaultLog()
        dom = DataLossDomain(store, cluster, np.random.default_rng(3), log=log)
        victim = dom.strike()
        assert victim in {"node-0", "node-1"}
        assert victim not in store.nodes_with_data()
        assert dom.strikes == 1
        assert dom.replicas_dropped >= 1
        assert log.episodes[0].kind == "data-loss"
        assert log.episodes[0].domain == "data-loss"
        dom.heal(victim)  # no-op: wiped data stays gone
        assert victim not in store.nodes_with_data()

    def test_empty_store_is_a_noop(self, cluster):
        dom = DataLossDomain(ObjectStore(), cluster, np.random.default_rng(3))
        assert dom.strike() is None
        assert dom.strikes == 0
