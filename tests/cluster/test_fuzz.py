"""Stateful fuzzing of the cluster lifecycle.

Hypothesis drives random sequences of submit / bind / resize / finish /
evict / node-failure operations and checks the accounting invariants
after every step: node allocations never drift or exceed allocatable,
the pending queue holds exactly the pending pods, and terminal pods hold
no resources.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cluster.chaos import FailureInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.node import Node
from repro.cluster.pod import PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine


CAPACITY = ResourceVector(cpu=8, memory=16, disk_bw=100, net_bw=100)


class ClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.cluster = Cluster(
            self.engine,
            [Node(f"node-{i}", CAPACITY) for i in range(3)],
            config=ClusterConfig(startup_delay=2.0, resize_delay=1.0),
        )
        self.injector = FailureInjector(self.cluster)
        self.counter = 0

    # -- helpers ------------------------------------------------------------

    def _live_pods(self):
        return [p for p in self.cluster.pods.values() if not p.terminal]

    def _active_pods(self):
        return [p for p in self.cluster.pods.values() if p.active]

    # -- rules ----------------------------------------------------------------

    @rule(cpu=st.floats(0.1, 4.0), memory=st.floats(0.1, 8.0))
    def submit(self, cpu, memory):
        spec = PodSpec(
            name=f"pod-{self.counter}",
            app="fuzz",
            workload_class=WorkloadClass.MICROSERVICE,
            requests=ResourceVector(cpu, memory, 1.0, 1.0),
        )
        self.counter += 1
        self.cluster.submit(spec)

    @precondition(lambda self: self.cluster.pending_pods())
    @rule(pod_idx=st.integers(0, 10), node_idx=st.integers(0, 2))
    def bind_if_fits(self, pod_idx, node_idx):
        pending = self.cluster.pending_pods()
        pod = pending[pod_idx % len(pending)]
        node = self.cluster.get_node(f"node-{node_idx}")
        if node.can_fit(pod.allocation):
            self.cluster.bind(pod.name, node.name)

    @precondition(lambda self: self._active_pods())
    @rule(pod_idx=st.integers(0, 10), factor=st.floats(0.2, 3.0))
    def resize(self, pod_idx, factor):
        active = self._active_pods()
        pod = active[pod_idx % len(active)]
        self.cluster.resize_pod(pod.name, pod.allocation * factor)

    @precondition(lambda self: self._live_pods())
    @rule(pod_idx=st.integers(0, 10))
    def finish(self, pod_idx):
        live = self._live_pods()
        self.cluster.finish(live[pod_idx % len(live)].name)

    @precondition(lambda self: self._live_pods())
    @rule(pod_idx=st.integers(0, 10))
    def evict(self, pod_idx):
        live = self._live_pods()
        self.cluster.evict(live[pod_idx % len(live)].name)

    @rule(dt=st.floats(0.1, 5.0))
    def advance_time(self, dt):
        self.engine.run_until(self.engine.now + dt)

    @rule(node_idx=st.integers(0, 2))
    def fail_or_recover_node(self, node_idx):
        name = f"node-{node_idx}"
        if self.injector.is_failed(name):
            self.injector.recover_node(name)
        else:
            self.injector.fail_node(name)

    # -- invariants --------------------------------------------------------------

    @invariant()
    def accounting_consistent(self):
        self.cluster.verify_invariants()

    @invariant()
    def terminal_pods_hold_nothing(self):
        for pod in self.cluster.pods.values():
            if pod.terminal:
                assert pod.usage.is_zero()
                for node in self.cluster.nodes.values():
                    assert pod.name not in node.pods

    @invariant()
    def pending_queue_matches_phase(self):
        queue_names = {p.name for p in self.cluster.pending_pods()}
        phase_names = {
            p.name
            for p in self.cluster.pods.values()
            if p.phase == PodPhase.PENDING
        }
        assert queue_names == phase_names

    @invariant()
    def failed_nodes_are_empty(self):
        for name in self.injector.failed_nodes():
            assert not self.cluster.get_node(name).pods


TestClusterFuzz = ClusterMachine.TestCase
