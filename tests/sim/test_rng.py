"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("workload/frontend")
    b = RngRegistry(seed=42).stream("workload/frontend")
    assert list(a.random(10)) == list(b.random(10))


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert list(a.random(10)) != list(b.random(10))


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("alpha")
    b = reg.stream("beta")
    assert list(a.random(10)) != list(b.random(10))


def test_stream_independent_of_creation_order():
    fwd = RngRegistry(seed=9)
    first = list(fwd.stream("a").random(5))
    fwd.stream("b")

    rev = RngRegistry(seed=9)
    rev.stream("b")
    second = list(rev.stream("a").random(5))
    assert first == second


def test_stream_is_cached():
    reg = RngRegistry(seed=3)
    assert reg.stream("s") is reg.stream("s")


def test_fork_is_deterministic():
    a = RngRegistry(seed=5).fork(3).stream("x")
    b = RngRegistry(seed=5).fork(3).stream("x")
    assert list(a.random(5)) == list(b.random(5))


def test_fork_differs_from_parent():
    parent = RngRegistry(seed=5)
    child = parent.fork(1)
    assert list(parent.stream("x").random(5)) != list(child.stream("x").random(5))
