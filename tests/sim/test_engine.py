"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError, Watchdog


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=100.0).now == 100.0

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_same_time_priority_orders_execution(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("low"), priority=10)
        engine.schedule(1.0, lambda: order.append("high"), priority=-10)
        engine.run()
        assert order == ["high", "low"]

    def test_same_time_same_priority_is_fifo(self):
        engine = Engine()
        order = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_execution_run(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(1.0, lambda: order.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_handle_state_transitions(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending
        engine.run()
        assert handle.executed
        assert not handle.pending


class TestRunUntil:
    def test_run_until_executes_events_at_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("at"))
        engine.schedule(5.1, lambda: fired.append("after"))
        engine.run_until(5.0)
        assert fired == ["at"]
        assert engine.now == 5.0

    def test_run_until_advances_clock_without_events(self):
        engine = Engine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_run_until_backwards_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_run_until_can_continue(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(1))
        engine.schedule(7.0, lambda: fired.append(2))
        engine.run_until(5.0)
        assert fired == [1]
        engine.run_until(10.0)
        assert fired == [1, 2]

    def test_run_max_events(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        executed = engine.run(max_events=4)
        assert executed == 4
        assert fired == [0, 1, 2, 3]


class TestPeriodic:
    def test_periodic_fires_at_interval(self):
        engine = Engine()
        times = []
        engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_periodic_custom_start(self):
        engine = Engine()
        times = []
        engine.every(10.0, lambda: times.append(engine.now), start=0.0)
        engine.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_periodic_cancel_stops_firing(self):
        engine = Engine()
        times = []
        handle = engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(25.0)
        handle.cancel()
        engine.run_until(100.0)
        assert times == [10.0, 20.0]
        assert handle.fired == 2

    def test_periodic_cancel_from_inside_callback(self):
        engine = Engine()
        count = []
        handle = engine.every(1.0, lambda: (count.append(1), handle.cancel()))
        engine.run_until(10.0)
        assert len(count) == 1

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Engine().every(0.0, lambda: None)

    def test_stop_interrupts_run(self):
        engine = Engine()
        fired = []

        def stopper():
            fired.append(engine.now)
            if len(fired) == 3:
                engine.stop()

        engine.every(1.0, stopper)
        engine.run_until(100.0)
        assert len(fired) == 3

    def test_pending_count_reflects_cancellations(self):
        engine = Engine()
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_count() == 2
        h1.cancel()
        assert engine.pending_count() == 1

    def test_events_executed_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_executed == 5


class TestHeapCompaction:
    def test_cancel_churn_compacts_heap(self):
        # Lazy cancellation must not let the heap grow without bound:
        # once cancelled entries dominate, the engine rebuilds the heap.
        engine = Engine()
        keep = []
        for round_ in range(10):
            handles = [
                engine.schedule(1000.0 + round_, lambda: None)
                for _ in range(100)
            ]
            keep.append(handles.pop())
            for handle in handles:
                handle.cancel()
        assert engine.heap_compactions > 0
        assert engine.pending_count() == len(keep)
        # Bounded at ~2× live: far below the 1000 entries ever scheduled.
        assert engine.heap_size() <= 2 * engine.pending_count() + Engine._COMPACT_MIN

    def test_compaction_preserves_execution_order(self):
        engine = Engine()
        order = []
        survivors = []
        for i in range(200):
            handle = engine.schedule(
                float(i + 1), lambda i=i: order.append(i)
            )
            if i % 10 == 0:
                survivors.append(i)
            else:
                handle.cancel()
        assert engine.heap_compactions > 0
        engine.run()
        assert order == survivors
        assert engine.pending_count() == 0

    def test_periodic_survives_compaction(self):
        # Regression: every()'s reschedule closure must keep pushing onto
        # the engine's live heap even after _compact() rebuilds it. With a
        # stale alias the periodic silently stopped after one firing and
        # pending_count() stayed wrong forever.
        engine = Engine()
        ticks = []
        engine.every(1.0, lambda: ticks.append(engine.now))

        # Cancellation churn before t=1 crosses the compaction threshold.
        handles = [engine.schedule(0.5, lambda: None) for _ in range(200)]
        for handle in handles:
            handle.cancel()
        assert engine.heap_compactions > 0

        engine.run_until(10.0)
        assert ticks == [float(t) for t in range(1, 11)]
        # The next firing (t=11) is the only live event left.
        assert engine.pending_count() == 1
        assert engine.heap_size() >= 1

    def test_periodic_survives_mid_run_compaction(self):
        # Same regression, but with churn generated from inside callbacks
        # between periodic firings (the watchdog-feed/retry-backoff shape).
        engine = Engine()
        ticks = []
        engine.every(1.0, lambda: ticks.append(engine.now))

        def churn() -> None:
            for handle in [engine.schedule(0.3, lambda: None) for _ in range(80)]:
                handle.cancel()

        for t in (0.5, 2.5, 4.5):
            engine.schedule(t, churn)
        engine.run_until(6.0)
        assert engine.heap_compactions >= 3
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert engine.pending_count() == 1

    def test_pending_count_is_exact_under_churn(self):
        engine = Engine()
        handles = [engine.schedule(5.0, lambda: None) for _ in range(300)]
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending_count() == 150
        engine.run()
        assert engine.pending_count() == 0
        assert engine.events_executed == 150


class TestWatchdog:
    def test_fires_at_timeout_without_feed(self):
        engine = Engine()
        fired = []
        dog = Watchdog(engine, 10.0, lambda: fired.append(engine.now))
        dog.start()
        engine.run_until(9.9)
        assert fired == []
        engine.run_until(10.0)
        assert fired == [10.0]
        assert dog.expirations == 1
        assert not dog.armed

    def test_feed_pushes_deadline_out(self):
        engine = Engine()
        fired = []
        dog = Watchdog(engine, 10.0, lambda: fired.append(engine.now))
        dog.start()
        engine.run_until(6.0)
        dog.feed()
        engine.run_until(15.0)
        assert fired == []
        engine.run_until(16.0)
        assert fired == [16.0]

    def test_cancel_disarms_without_firing(self):
        engine = Engine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(1))
        dog.start()
        dog.cancel()
        engine.run_until(20.0)
        assert fired == []
        assert dog.expirations == 0

    def test_fires_at_most_once_per_arm(self):
        engine = Engine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(engine.now))
        dog.start()
        engine.run_until(30.0)
        assert fired == [5.0]
        dog.feed()  # re-arming after expiry works
        engine.run_until(40.0)
        assert fired == [5.0, 35.0]
        assert dog.expirations == 2

    def test_expiry_beats_same_tick_default_priority_events(self):
        # The self-fencing property: at an exact deadline tie, the
        # watchdog (priority -1) runs before a rival's default-priority
        # event — a fenced leader stops before a lease stealer acts.
        engine = Engine()
        order = []
        dog = Watchdog(engine, 10.0, lambda: order.append("fence"))
        dog.start()
        engine.schedule(10.0, lambda: order.append("steal"))
        engine.run_until(10.0)
        assert order == ["fence", "steal"]

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Watchdog(Engine(), 0.0, lambda: None)


class TestCycleHooks:
    def test_hook_fires_at_timestamp_boundaries(self):
        engine = Engine()
        boundaries = []
        engine.add_cycle_hook(lambda: boundaries.append(engine.now))
        for t in (1.0, 1.0, 2.0, 5.0):
            engine.schedule_at(t, lambda: None)
        engine.run_until(10.0)
        # The hook fires before the clock advances past each batch:
        # after both t=1 events, after t=2, after t=5 nothing is left
        # (end-of-run quiescence needs an explicit final check).
        assert boundaries == [0.0, 1.0, 2.0]

    def test_hook_not_between_same_timestamp_events(self):
        engine = Engine()
        calls = []
        engine.add_cycle_hook(lambda: calls.append(engine.now))
        for _ in range(5):
            engine.schedule_at(3.0, lambda: None)
        engine.run_until(4.0)
        assert calls == [0.0]  # one boundary, not five

    def test_remove_cycle_hook(self):
        engine = Engine()
        calls = []
        hook = lambda: calls.append(engine.now)  # noqa: E731
        engine.add_cycle_hook(hook)
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.run_until(3.0)
        assert calls == [0.0, 1.0]
        engine.remove_cycle_hook(hook)
        engine.remove_cycle_hook(hook)  # idempotent
        engine.schedule_at(4.0, lambda: None)
        engine.run_until(5.0)
        assert calls == [0.0, 1.0]

    def test_hooks_do_not_change_execution(self):
        def run(with_hook):
            engine = Engine()
            order = []
            if with_hook:
                engine.add_cycle_hook(lambda: None)
            engine.every(1.0, lambda: order.append(engine.now))
            engine.run_until(10.0)
            return order, engine.events_executed

        assert run(False) == run(True)

    def test_audit_heap_counts_live_and_cancelled(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(6)]
        for handle in handles[:2]:
            handle.cancel()
        live, cancelled = engine.audit_heap()
        assert live == 4
        assert cancelled == 2
        assert live == engine.pending_count()
        assert cancelled == engine.cancelled_in_heap

    def test_audit_heap_detects_stale_alias_push(self):
        # Reintroduce the PR 4 compaction bug by hand: push an event
        # onto a captured pre-compaction heap alias. The O(1) counters
        # say one thing, the real heap another — exactly the mismatch
        # the heap-integrity invariant asserts on.
        import heapq

        engine = Engine()
        stale = engine._heap
        handle = engine.schedule(1.0, lambda: None)
        engine._heap = []  # simulate a compaction swapping the list
        heapq.heappush(stale, (2.0, 0, 99, handle))  # orphaned push
        live, cancelled = engine.audit_heap()
        assert live == 0
        assert engine.pending_count() == 1
        assert live != engine.pending_count()
