"""Policy shoot-out: static vs HPA vs VPA vs adaptive multi-resource.

The same service, load, and cluster under each autoscaling policy — the
scenario behind reconstructed tables R-T1/R-T2. The load mixes a diurnal
swing with a flash crowd, so policies are tested on both slow drift and a
sudden spike.

Run:  python examples/policy_comparison.py
"""

from repro import ClusterSpec, EvolvePlatform, PlatformConfig, ResourceVector
from repro.analysis.report import format_table
from repro.workloads import (
    CompositeTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    LatencyPLO,
    ServiceDemands,
)

POLICIES = ("static", "hpa", "vpa", "adaptive")
DURATION = 3 * 3600.0


def run_one(policy: str):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=42),
        scheduler="converged",
        policy=policy,
    )
    trace = CompositeTrace([
        DiurnalTrace(base=150, amplitude=100, period=5400),
        FlashCrowdTrace(start_time=4000, peak_rate=250, rise=60, decay=900),
    ])
    platform.deploy_microservice(
        "shop",
        trace=trace,
        demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.1, net_mb=0.05,
                               base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=40, net_bw=40),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.run(DURATION)
    return platform.result()


def main() -> None:
    rows = []
    for policy in POLICIES:
        result = run_one(policy)
        tracker = result.trackers["shop"]
        rows.append([
            policy,
            f"{tracker.violation_fraction:.1%}",
            f"{tracker.worst_ratio:.2f}x",
            f"{result.utilization.overall_usage:.1%}",
            f"{result.utilization.overall_alloc:.1%}",
        ])
    print("=== 3 h diurnal + flash-crowd, one service, 4 nodes ===")
    print(format_table(
        ["policy", "violation time", "worst ratio", "mean usage", "mean alloc"],
        rows,
    ))
    print()
    print("Reading: the adaptive controller should show the lowest violation")
    print("time while allocating the least (usage close to alloc).")


if __name__ == "__main__":
    main()
