"""Quickstart: one PLO-managed microservice on the converged platform.

Deploys a latency-sensitive service under a diurnal load trace, lets the
adaptive multi-resource controller manage it for two simulated hours, and
prints what happened.

Run:  python examples/quickstart.py
"""

from repro import ClusterSpec, EvolvePlatform, ResourceVector
from repro.workloads import DiurnalTrace, LatencyPLO, ServiceDemands


def main() -> None:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        scheduler="converged",
        policy="adaptive",
    )

    platform.deploy_microservice(
        "frontend",
        # Day/night swing: 30–270 req/s over a 1-hour "day".
        trace=DiurnalTrace(base=150, amplitude=120, period=3600),
        # Each request: 10 ms of CPU, a little I/O.
        demands=ServiceDemands(cpu_seconds=0.01, disk_mb=0.05, net_mb=0.02,
                               base_latency=0.01),
        # Deliberately lean initial sizing — the controller must react.
        allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=25, net_bw=25),
        plo=LatencyPLO(0.05, window=30),  # p99 ≤ 50 ms
    )

    platform.run(2 * 3600)

    result = platform.result()
    tracker = result.trackers["frontend"]
    svc = platform.apps["frontend"]
    print("=== quickstart: adaptive multi-resource autoscaling ===")
    print(f"simulated time        : {result.duration / 3600:.1f} h")
    print(f"PLO violation fraction: {tracker.violation_fraction:.1%}")
    print(f"worst latency ratio   : {tracker.worst_ratio:.2f}x of target")
    print(f"final replicas        : {svc.replica_count}")
    alloc = svc.current_allocation()
    print(
        "final per-replica alloc: "
        f"cpu={alloc.cpu:.2f} cores, mem={alloc.memory:.2f} GiB, "
        f"disk={alloc.disk_bw:.0f} MB/s, net={alloc.net_bw:.0f} MB/s"
    )
    print(f"cluster usage (mean)  : {result.utilization.overall_usage:.1%}")
    print(f"cluster alloc (mean)  : {result.utilization.overall_alloc:.1%}")
    print(f"replica scale events  : {result.scale_events}")


if __name__ == "__main__":
    main()
