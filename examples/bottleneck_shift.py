"""Multi-resource adaptation: following a moving bottleneck.

A service whose per-request demand profile shifts every 20 minutes —
CPU-heavy, then disk-heavy, then network-heavy. A CPU-only controller is
blind to two of the three phases; the multi-resource controller reads
per-dimension saturation and redirects allocations. This is the scenario
behind reconstructed figure R-F3.

Run:  python examples/bottleneck_shift.py
"""

from repro import ClusterSpec, EvolvePlatform, PlatformConfig, ResourceVector
from repro.analysis.report import format_table
from repro.workloads import ConstantTrace, LatencyPLO
from repro.workloads.microservice import DemandPhase, ServiceDemands

PHASE = 1200.0  # 20 min per phase

PHASES = [
    # CPU-heavy: 20 ms CPU per request, light I/O.
    DemandPhase(0.0, ServiceDemands(
        cpu_seconds=0.02, disk_mb=0.05, net_mb=0.05, base_latency=0.01)),
    # Disk-heavy: each request streams 2 MB from disk.
    DemandPhase(PHASE, ServiceDemands(
        cpu_seconds=0.002, disk_mb=2.0, net_mb=0.05, base_latency=0.01)),
    # Network-heavy: each request ships 1.5 MB to clients.
    DemandPhase(2 * PHASE, ServiceDemands(
        cpu_seconds=0.002, disk_mb=0.05, net_mb=1.5, base_latency=0.01)),
]


def run(dimensions):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=3),
        config=PlatformConfig(seed=5),
        policy="adaptive",
        policy_kwargs={
            "horizontal": False,
            **({"dimensions": dimensions} if dimensions else {}),
        },
    )
    svc = platform.deploy_microservice(
        "pipeline",
        trace=ConstantTrace(60),
        demands=PHASES,
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=60, net_bw=60),
        plo=LatencyPLO(0.05, window=30),
    )
    collector = platform.collector
    samples = []
    for end in range(300, int(3 * PHASE) + 1, 300):
        platform.run(end - platform.engine.now)
        alloc = svc.current_allocation()
        samples.append([
            f"{end / 60:.0f} min",
            svc.current_bottleneck,
            f"{alloc.cpu:.2f}",
            f"{alloc.disk_bw:.0f}",
            f"{alloc.net_bw:.0f}",
            f"{(collector.latest('app/pipeline/latency') or 0) * 1000:.0f} ms",
        ])
    return samples, platform.result()


def main() -> None:
    print("=== moving bottleneck: CPU (0-20m) → disk (20-40m) → net (40-60m) ===\n")
    for label, dims in (("multi-resource", None), ("CPU-only ablation", ("cpu",))):
        samples, result = run(dims)
        print(f"--- {label} controller ---")
        print(format_table(
            ["time", "bottleneck", "cpu alloc", "disk alloc", "net alloc", "latency"],
            samples,
        ))
        tracker = result.trackers["pipeline"]
        print(f"violation time: {tracker.violation_fraction:.1%}\n")
    print("Reading: the multi-resource controller grows whichever dimension")
    print("saturates and reclaims the others; the CPU-only ablation stalls")
    print("as soon as the bottleneck leaves the CPU.")


if __name__ == "__main__":
    main()
