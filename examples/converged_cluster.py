"""The convergence demo: Big-Data + HPC + Cloud on one cluster.

Runs the same mixed workload twice — once on a statically-siloed cluster
(the pre-convergence status quo: one node pool per world) and once under
the converged scheduler — and compares utilization, HPC queue waits, job
makespans, and microservice PLO compliance.

Run:  python examples/converged_cluster.py
"""

from repro import ClusterSpec, EvolvePlatform, PlatformConfig, ResourceVector
from repro.analysis.report import format_table
from repro.storage.placement import spread_blocks
from repro.workloads import DiurnalTrace, LatencyPLO, ServiceDemands, Stage

DURATION = 2 * 3600.0


def run_world(scheduler: str):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=6),
        config=PlatformConfig(seed=13),
        scheduler=scheduler,
        policy="adaptive",
    )
    spread_blocks(
        platform.store, "clickstream", total_mb=6000, block_mb=100,
        nodes=list(platform.cluster.nodes)[:3],
    )

    # Cloud world: a user-facing API.
    platform.deploy_microservice(
        "api",
        trace=DiurnalTrace(base=120, amplitude=80, period=3600),
        demands=ServiceDemands(cpu_seconds=0.01, net_mb=0.05, base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=20, net_bw=40),
        plo=LatencyPLO(0.06, window=30),
    )

    # Big-data world: a daily ETL over the clickstream dataset.
    platform.submit_bigdata(
        "etl",
        stages=[
            Stage("scan", 3000.0, input_mb=6000),
            Stage("aggregate", 1500.0, input_mb=1000, deps=("scan",)),
            Stage("report", 300.0, deps=("aggregate",)),
        ],
        allocation=ResourceVector(cpu=3, memory=6, disk_bw=150, net_bw=100),
        executors=4,
        dataset="clickstream",
        deadline=DURATION,
    )

    # HPC world: two tightly-coupled simulations, gang-scheduled.
    for i, delay in enumerate((60.0, 1800.0)):
        platform.submit_hpc(
            f"cfd-{i}", ranks=4, duration=900.0,
            allocation=ResourceVector(cpu=8, memory=12, disk_bw=5, net_bw=150),
            delay=delay,
        )

    platform.run(DURATION)
    return platform.result()


def fmt(value, suffix=""):
    if value is None:
        return "never"
    return f"{value:.0f}{suffix}"


def main() -> None:
    results = {s: run_world(s) for s in ("siloed", "converged")}
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            f"{result.utilization.overall_usage:.1%}",
            f"{result.violation_fraction('api'):.1%}",
            fmt(result.makespans.get("etl"), " s"),
            fmt(result.hpc_waits.get("cfd-0"), " s"),
            fmt(result.hpc_waits.get("cfd-1"), " s"),
        ])
    print("=== mixed worlds on 6 nodes: siloed vs converged ===")
    print(format_table(
        ["scheduler", "cluster usage", "api violations",
         "etl makespan", "cfd-0 wait", "cfd-1 wait"],
        rows,
    ))
    print()
    print("Reading: silos strand capacity — HPC gangs (32 cores) cannot fit")
    print("in a 2-node pool and wait forever, while the converged scheduler")
    print("admits them immediately and still protects the api's PLO.")


if __name__ == "__main__":
    main()
