"""Resilience demo: node failures under an armed chaos monkey.

A managed service and a batch job run while random node crashes strike
the cluster. Shows the full recovery chain: crash → pods evicted →
applications self-heal (replacement pods) → scheduler re-places →
controller re-converges on the PLO.

Run:  python examples/failure_recovery.py
"""

from repro import ClusterSpec, EvolvePlatform, PlatformConfig, ResourceVector
from repro.workloads import ConstantTrace, LatencyPLO, ServiceDemands, Stage

DURATION = 2 * 3600.0


def main() -> None:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=5),
        config=PlatformConfig(seed=21),
        scheduler="converged",
        policy="adaptive",
    )
    svc = platform.deploy_microservice(
        "checkout",
        trace=ConstantTrace(200),
        demands=ServiceDemands(cpu_seconds=0.01, net_mb=0.05, base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=1.5, disk_bw=20, net_bw=40),
        plo=LatencyPLO(0.05, window=30),
        replicas=3,
    )
    job = platform.submit_bigdata(
        "nightly-etl",
        stages=[Stage("map", 6000.0), Stage("reduce", 1500.0, deps=("map",))],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=60, net_bw=40),
        executors=3,
    )
    platform.enable_chaos(mtbf=1200.0, repair_time=240.0)
    platform.run(DURATION)

    result = platform.result()
    tracker = result.trackers["checkout"]
    print("=== chaos run:", f"{DURATION / 3600:.0f} h, MTBF 20 min, repair 4 min ===")
    print(f"node failures injected : {len(platform.injector.failures)}")
    for failure in platform.injector.failures:
        print(
            f"  t={failure.time:7.0f}s  {failure.node_name} down, "
            f"{len(failure.evicted_pods)} pods evicted"
        )
    print(f"service replacements   : {svc.replacements} pods respawned")
    print(f"service PLO violations : {tracker.violation_fraction:.1%}")
    print(f"batch job finished     : {job.done}"
          + (f" (makespan {job.makespan():.0f}s)" if job.done else ""))
    print(f"batch executor respawns: {job.replacements}")
    print()
    print("Reading: every crash costs a short violation burst while replicas")
    print("restart elsewhere; the controller re-converges without operator")
    print("action, and the batch job absorbs executor loss via self-healing.")


if __name__ == "__main__":
    main()
