"""Multi-tenancy demo: quotas and fairness on a shared cluster.

Three tenants share one converged cluster. "burst" tries to grab far
more than its share; a quota caps it, protecting "steady" and "batch".
Prints per-tenant allocations, the fairness index, and what the greedy
tenant's PLO pays for its cap.

Run:  python examples/multi_tenant.py
"""

from repro import ClusterSpec, EvolvePlatform, PlatformConfig, ResourceVector
from repro.analysis.report import format_table
from repro.analysis.stats import jains_index
from repro.workloads import ConstantTrace, LatencyPLO, ServiceDemands, Stage

DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
DURATION = 2 * 3600.0


def run(with_quotas: bool):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=33),
        policy="adaptive",
    )
    if with_quotas:
        for tenant in ("steady", "burst"):
            platform.set_tenant_quota(
                tenant,
                ResourceVector(cpu=8, memory=24, disk_bw=200, net_bw=200),
            )
    platform.deploy_microservice(
        "steady-api", trace=ConstantTrace(150), demands=DEMANDS,
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30), labels={"tenant": "steady"},
    )
    platform.deploy_microservice(
        "burst-api", trace=ConstantTrace(1500), demands=DEMANDS,  # wants ~15 cores
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30), labels={"tenant": "burst"},
    )
    platform.submit_bigdata(
        "batch-etl", stages=[Stage("map", 20_000.0)],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=50, net_bw=50),
        executors=3, labels={"tenant": "batch"},
    )
    platform.run(DURATION)
    return platform


def main() -> None:
    for with_quotas in (False, True):
        platform = run(with_quotas)
        result = platform.result()
        shares = []
        rows = []
        for tenant in ("steady", "burst", "batch"):
            usage = platform.quotas.usage(
                tenant, platform.cluster.pods.values()
            )
            shares.append(usage.cpu)
            limit = platform.quotas.limit(tenant)
            rows.append([
                tenant,
                f"{usage.cpu:.1f} cores",
                f"{limit.cpu:.0f} cores" if limit else "uncapped",
            ])
        title = "with quotas" if with_quotas else "no quotas"
        print(f"--- {title} ---")
        print(format_table(["tenant", "cpu allocated", "quota"], rows))
        print(f"fairness (Jain, cpu): {jains_index(shares):.2f}")
        print(f"burst-api violations : {result.violation_fraction('burst-api'):.1%}")
        print(f"steady-api violations: {result.violation_fraction('steady-api'):.1%}")
        print(f"quota denials        : {platform.quotas.denials}")
        print()
    print("Reading: the cap turns the greedy tenant's overload into *its own*")
    print("problem (violations + denials) instead of everyone's.")


if __name__ == "__main__":
    main()
